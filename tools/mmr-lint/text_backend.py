"""Self-contained token-based backend for mmr-lint.

Used whenever the libclang backend is unavailable (no python3-clang /
libclang in the environment) or explicitly selected with
``--backend=text``.  It performs a structural scan of the token stream:
namespaces, classes (with bases and members), function definitions
(with constructor initializer lists), and function bodies (calls,
allocations, range-for loops, ``.begin()`` iterator loops, container
subscripts).  Types are resolved by name through a project-wide index
of members, locals, parameters, aliases, and method return types, so a
``for (auto &[k, v] : pcs)`` in a ``.cc`` file resolves against the
``std::unordered_map`` member declared in the header.

The model it emits is the same Observations structure the clang
backend produces; rules never see backend-specific data.
"""

from __future__ import annotations

import re

from cpp_lexer import IDENT, PP, PUNCT, lex
from project_model import (CallSite, ClassInfo, FunctionInfo, IdentUse,
                           LoopSite, Observations, SiteNote, VarDecl)

# Containers whose iteration order is not deterministic across
# implementations (and, with pointer keys, across runs).
UNORDERED = {"unordered_map", "unordered_set", "unordered_multimap",
             "unordered_multiset"}
# Node-based ordered maps: subscripting may insert (allocate).
MAP_LIKE = {"map", "multimap"} | {"unordered_map", "unordered_multimap"}
SET_LIKE = {"set", "multiset"}

# Identifiers whose very presence (outside the RNG module) breaks
# reproducibility.  "call0" entries only fire as nullary calls.
NONDET_ANY = {"random_device", "system_clock", "gettimeofday",
              "localtime", "mt19937", "mt19937_64", "minstd_rand",
              "default_random_engine", "random_shuffle"}
NONDET_CALL0 = {"rand", "clock"}

ALLOC_FREE_CALLS = {"malloc", "calloc", "realloc", "strdup",
                    "aligned_alloc", "make_unique", "make_shared",
                    "to_string"}

BUILTIN_INT = {"int", "long", "short", "unsigned", "signed", "int32_t",
               "uint32_t", "int16_t", "uint16_t", "int64_t", "size_t"}

_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast",
    "catch", "new", "delete", "throw", "assert", "decltype", "typeid",
    "noexcept", "alignas", "static_assert", "co_await", "co_return",
}

_SUPPRESS_RE = re.compile(
    r"mmr-lint:\s*(allow|allow-file)\(([a-z0-9_,\- ]+)\)")


class _FileScan:
    """Raw per-file facts before cross-file resolution."""

    def __init__(self, path):
        self.path = path
        self.raw_loops = []       # (expr_text, chain, cls, fn, line, locals)
        self.raw_subscripts = []  # (base_ident, fn_ref, line, locals)
        self.functions = []       # FunctionInfo (+ ._locals attr)


class TextBackend:
    name = "text"

    def __init__(self):
        self.obs = Observations()
        # (class, member) -> container kind; "" class for globals
        self.member_types: dict[tuple[str, str], str] = {}
        # method simple name -> container kind of return (project-wide)
        self.method_returns: dict[str, str] = {}
        # using-alias name -> container kind
        self.aliases: dict[str, str] = {}
        self.hot_free_decls: set[str] = set()
        self.scans: list[_FileScan] = []

    # -- public entry ---------------------------------------------------

    def analyze(self, files: dict[str, str]) -> Observations:
        for path in sorted(files):
            self._scan_file(path, files[path])
        self._resolve()
        self.obs.files = sorted(files)
        return self.obs

    # -- pass 1: per-file structural scan -------------------------------

    def _scan_file(self, path, source):
        toks, comments = lex(source)
        self.toks = toks
        self.path = path
        scan = _FileScan(path)
        self.scans.append(scan)
        self.scan = scan
        self._suppressions(comments, toks)
        self._watch_idents(toks)
        i = 0
        while i < len(toks):
            i = self._scan_scope(i, cls=None)

    def _suppressions(self, comments, toks):
        supp = self.obs.suppressions.setdefault(self.path, {})
        tok_lines = [t.line for t in toks]
        import bisect
        for c in comments:
            m = _SUPPRESS_RE.search(c.text)
            if not m:
                continue
            rules = {r.strip() for r in m.group(2).split(",") if r.strip()}
            if m.group(1) == "allow-file":
                supp.setdefault(0, set()).update(rules)
                continue
            supp.setdefault(c.line, set()).update(rules)
            if c.own_line:
                # Attach to the first code line after the comment.
                k = bisect.bisect_right(tok_lines, c.end_line)
                if k < len(tok_lines):
                    supp.setdefault(tok_lines[k], set()).update(rules)

    def _watch_idents(self, toks):
        for k, t in enumerate(toks):
            if t.kind != IDENT:
                continue
            prev = toks[k - 1].text if k else ""
            if prev in (".", "->"):
                continue
            if t.text in NONDET_ANY:
                self.obs.ident_uses.append(
                    IdentUse(t.text, "name", self.path, t.line))
            elif t.text in NONDET_CALL0:
                if (k + 2 < len(toks) and toks[k + 1].text == "("
                        and toks[k + 2].text == ")"):
                    self.obs.ident_uses.append(
                        IdentUse(t.text, "call0", self.path, t.line))
            elif t.text == "time":
                if (k + 3 < len(toks) and toks[k + 1].text == "("
                        and toks[k + 2].text in ("nullptr", "NULL", "0")
                        and toks[k + 3].text == ")"):
                    self.obs.ident_uses.append(
                        IdentUse("time", "call0", self.path, t.line))
            elif t.text == "srand":
                if k + 1 < len(toks) and toks[k + 1].text == "(":
                    self.obs.ident_uses.append(
                        IdentUse("srand", "call0", self.path, t.line))

    # -- scope scanning --------------------------------------------------

    def _scan_scope(self, i, cls):
        """Scan one namespace/class scope starting at token i; returns
        the index just past the scope's closing brace (or EOF)."""
        toks = self.toks
        n = len(toks)
        while i < n:
            if toks[i].text == "}":
                return i + 1
            head, i = self._collect_head(i)
            if i >= n:
                return i
            term = toks[i].text if i < n else ";"
            if term == ";":
                self._declaration(head, cls)
                i += 1
                continue
            if term == "}":
                continue
            # term == "{" ------------------------------------------------
            words = [t.text for t in head]
            if not head:
                i = self._skip_braces(i)
                continue
            if words[0] == "namespace":
                i = self._scan_scope(i + 1, cls)
                continue
            kind_idx = self._class_head(head)
            if kind_idx is not None:
                i = self._enter_class(head, kind_idx, i, cls)
                continue
            if words[0] == "enum" or "=" in self._toplevel(head):
                # enum body or a braced initializer: skip the braces,
                # then keep collecting the same statement.
                i = self._skip_braces(i)
                continue
            paren = self._param_group(head)
            if paren is None:
                i = self._skip_braces(i)
                continue
            i = self._function(head, paren, i, cls)
        return i

    def _collect_head(self, i):
        """Collect declaration-head tokens until a top-level ';', '{'
        or '}' (not consumed).  Skips attributes and template intros."""
        toks = self.toks
        n = len(toks)
        head = []
        depth = 0
        while i < n:
            t = toks[i]
            if t.kind == PP:
                i += 1
                continue
            if t.text == "(":
                depth += 1
            elif t.text == ")":
                depth -= 1
            elif depth == 0 and t.text in (";", "{", "}"):
                return head, i
            elif t.text == "[" and i + 1 < n and toks[i + 1].text == "[":
                i = self._skip_attr(i)
                continue
            head.append(t)
            i += 1
        return head, i

    def _skip_attr(self, i):
        toks = self.toks
        depth = 0
        while i < len(toks):
            if toks[i].text == "[":
                depth += 1
            elif toks[i].text == "]":
                depth -= 1
                if depth == 0:
                    return i + 1
            i += 1
        return i

    def _skip_braces(self, i):
        toks = self.toks
        depth = 0
        while i < len(toks):
            if toks[i].text == "{":
                depth += 1
            elif toks[i].text == "}":
                depth -= 1
                if depth == 0:
                    return i + 1
            i += 1
        return i

    @staticmethod
    def _toplevel(head):
        """Texts of head tokens outside any paren/angle nesting."""
        out = []
        pd = ad = 0
        for t in head:
            if t.text == "(":
                pd += 1
            elif t.text == ")":
                pd -= 1
            elif t.text == "<":
                ad += 1
            elif t.text == ">" and ad:
                ad -= 1
            elif pd == 0 and ad == 0:
                out.append(t.text)
        return out

    @staticmethod
    def _class_head(head):
        """Index of 'class'/'struct' keyword when the head introduces a
        class, else None."""
        j = 0
        if head and head[0].text == "template":
            ad = 0
            while j < len(head):
                if head[j].text == "<":
                    ad += 1
                elif head[j].text == ">":
                    ad -= 1
                    if ad == 0:
                        j += 1
                        break
                j += 1
        if j < len(head) and head[j].text in ("class", "struct"):
            # A parameter list before any ':' means "function returning
            # struct X" or similar — not a class definition.
            for t in head[j:]:
                if t.text == "(":
                    return None
                if t.text == ":":
                    break
            return j
        return None

    def _enter_class(self, head, kidx, i, outer):
        name = None
        bases = []
        j = kidx + 1
        while j < len(head) and head[j].text in ("final", "alignas"):
            j += 1
        if j < len(head) and head[j].kind == IDENT:
            name = head[j].text
        # bases: after a top-level ':'
        seen_colon = False
        ad = 0
        for k in range(j + 1, len(head)):
            t = head[k]
            if t.text == "<":
                ad += 1
            elif t.text == ">":
                ad = max(0, ad - 1)
            elif t.text == ":" and ad == 0:
                seen_colon = True
            elif seen_colon and ad == 0 and t.kind == IDENT and \
                    t.text not in ("public", "protected", "private",
                                   "virtual", "final"):
                bases.append(t.text)
        if name is None:
            return self._skip_braces(i)
        # "::"-qualified bases keep only the last component, which is
        # already how the append above behaves (each component appended,
        # last one wins for the membership test in rules).
        info = self.obs.classes.setdefault(
            name, ClassInfo(name, [], self.path, head[kidx].line))
        if info.line == 0:
            # Placeholder created by a method definition scanned before
            # the header: adopt the real declaration site.
            info.file = self.path
            info.line = head[kidx].line
        info.bases.extend(bases)
        end = self._scan_scope(i + 1, cls=name)
        return end

    # -- declarations ----------------------------------------------------

    def _declaration(self, head, cls):
        if not head:
            return
        words = [t.text for t in head]
        if words[0] == "using" and "=" in words:
            eq = words.index("=")
            kind = self._container_kind(head[eq:])
            if kind and eq >= 2:
                self.aliases[words[1]] = kind
            return
        paren = self._param_group(head)
        if paren is not None:
            lo, hi = paren
            mname = self._callee_name(head, lo)
            if mname:
                if cls:
                    ci = self._class(cls)
                    ci.methods.add(mname)
                    if any(t.text == "MMR_HOT_PATH" for t in head[:lo]):
                        ci.hot_decls.add(mname)
                elif any(t.text == "MMR_HOT_PATH" for t in head[:lo]):
                    self.hot_free_decls.add(mname)
                kind = self._container_kind(head[:lo])
                if kind:
                    self.method_returns[mname] = kind
                self._param_decls(head[lo + 1:hi], mname)
            return
        self._var_decl(head, cls)

    def _var_decl(self, head, cls):
        """Member or file-scope variable declaration."""
        kind = self._container_kind(head)
        name = self._declared_name(head)
        if kind and name:
            scope = f"member:{cls}" if cls else "global:"
            self.member_types[(cls or "", name)] = kind
            self.obs.decls.append(VarDecl(
                name, kind + self._ptr_key_marker(head), scope,
                self.path, head[0].line))
        elif name and self._builtin_int(head, name):
            scope = f"member:{cls}" if cls else "global:"
            self.obs.decls.append(VarDecl(
                name, self._int_type_text(head), scope,
                self.path, head[0].line))

    def _param_decls(self, params, fn_name):
        """Split a parameter list on top-level commas and record
        parameter declarations of interest."""
        groups = [[]]
        pd = ad = 0
        for t in params:
            if t.text == "(":
                pd += 1
            elif t.text == ")":
                pd -= 1
            elif t.text == "<":
                ad += 1
            elif t.text == ">" and ad:
                ad -= 1
            if t.text == "," and pd == 0 and ad == 0:
                groups.append([])
            else:
                groups[-1].append(t)
        for g in groups:
            if not g:
                continue
            name = self._declared_name(g)
            if not name:
                continue
            kind = self._container_kind(g)
            if kind:
                self.member_types[("", name)] = kind  # weak fallback
                self.obs.decls.append(VarDecl(
                    name, kind + self._ptr_key_marker(g),
                    f"param:{fn_name}", self.path, g[0].line))
            elif self._builtin_int(g, name):
                self.obs.decls.append(VarDecl(
                    name, self._int_type_text(g), f"param:{fn_name}",
                    self.path, g[0].line))

    @staticmethod
    def _int_type_text(head):
        words = []
        for t in head:
            if t.text in BUILTIN_INT or t.text in ("const", "std"):
                words.append(t.text)
        return " ".join(w for w in words if w not in ("const", "std"))

    @staticmethod
    def _builtin_int(head, name):
        """True when the declared type is a raw builtin integer."""
        for t in head:
            if t.kind != IDENT:
                continue
            if t.text in ("const", "static", "constexpr", "inline",
                          "mutable", "std", "volatile", "typename"):
                continue
            if t.text == name:
                return False
            return t.text in BUILTIN_INT
        return False

    def _container_kind(self, toks_):
        for t in toks_:
            if t.kind == IDENT:
                if t.text in UNORDERED:
                    return t.text
                if t.text in MAP_LIKE or t.text in SET_LIKE:
                    return t.text
                if t.text in self.aliases:
                    return self.aliases[t.text]
        return None

    @staticmethod
    def _ptr_key_marker(toks_):
        """'<ptr-key>' when the first template argument of a map/set
        type is a pointer."""
        ad = 0
        for k, t in enumerate(toks_):
            if t.text == "<":
                ad += 1
                if ad == 1:
                    # scan first top-level template arg
                    depth = 1
                    j = k + 1
                    while j < len(toks_) and depth:
                        x = toks_[j].text
                        if x == "<":
                            depth += 1
                        elif x == ">":
                            depth -= 1
                        elif depth == 1 and x == ",":
                            break
                        elif depth == 1 and x == "*":
                            return "<ptr-key>"
                        j += 1
                    return ""
            elif t.text == ">" and ad:
                ad -= 1
        return ""

    @staticmethod
    def _declared_name(head):
        """Last identifier before '=', '{' or end — the declared name
        for a member/param; None when it looks like a type-only head."""
        last = None
        ad = pd = 0
        for t in head:
            if t.text == "<":
                ad += 1
            elif t.text == ">" and ad:
                ad -= 1
            elif t.text == "(":
                pd += 1
            elif t.text == ")":
                pd -= 1
            elif ad == 0 and pd == 0:
                if t.text in ("=", "{"):
                    break
                if t.kind == IDENT and t.text not in (
                        "const", "static", "constexpr", "inline",
                        "mutable", "virtual", "override", "final",
                        "noexcept", "std", "operator", "struct",
                        "class", "enum", "typename", "unsigned",
                        "signed", "long", "short"):
                    last = t.text
                elif t.kind == IDENT:
                    # builtin / qualifier keywords: a following bare
                    # "unsigned x" still needs x; keep scanning.
                    if t.text in ("unsigned", "signed", "long", "short"):
                        continue
        return last

    @staticmethod
    def _param_group(head):
        """(open_idx, close_idx) of the *parameter list* paren group in
        a declaration head, i.e. the first top-level '(' directly
        preceded by an identifier/operator; None otherwise."""
        pd = 0
        ad = 0
        for k, t in enumerate(head):
            if t.text == "<":
                ad += 1
            elif t.text == ">" and ad:
                ad -= 1
            elif t.text == "(" and ad == 0:
                if pd == 0:
                    prev = head[k - 1] if k else None
                    prevprev = head[k - 2] if k >= 2 else None
                    named = prev is not None and (
                        prev.kind == IDENT or prev.text == "~" or
                        (prevprev is not None
                         and prevprev.text == "operator"))
                    if named and prev.text not in ("return",):
                        # find matching close
                        depth = 0
                        for j in range(k, len(head)):
                            if head[j].text == "(":
                                depth += 1
                            elif head[j].text == ")":
                                depth -= 1
                                if depth == 0:
                                    return (k, j)
                        return None
                pd += 1
            elif t.text == ")":
                pd -= 1
        return None

    @staticmethod
    def _callee_name(head, paren_idx):
        """Function name directly before its parameter '('."""
        k = paren_idx - 1
        if k < 0:
            return None
        t = head[k]
        if t.kind == IDENT:
            if k >= 1 and head[k - 1].text == "~":
                return "~" + t.text
            return t.text
        if k >= 1 and head[k - 1].text == "operator":
            return "operator" + t.text
        return None

    # -- function definitions -------------------------------------------

    def _function(self, head, paren, i, cls):
        """head ends just before a '{' that is either the body or a
        constructor-init-list brace initializer."""
        toks = self.toks
        lo, hi = paren
        name = self._callee_name(head, lo)
        if name is None:
            return self._skip_braces(i)
        # Qualified definition:  Cls::name(...)  { }
        fn_cls = cls
        if lo >= 3 and head[lo - 2].text == "::" and \
                head[lo - 3].kind == IDENT:
            fn_cls = head[lo - 3].text
        # Constructor init list: decide whether this '{' opens the body.
        # After the parameter list, a top-level ':' starts the init
        # list; inside it, a brace directly after an identifier is a
        # brace-initializer, which we skip.
        tail = self._toplevel(head[hi + 1:])
        in_init_list = ":" in tail
        while in_init_list and i < len(toks) and toks[i].text == "{":
            prev = head[-1] if head else None
            if prev is not None and prev.kind == IDENT and \
                    prev.text not in ("const", "noexcept", "override",
                                      "final"):
                i = self._skip_braces(i)
                head, i = self._collect_head(i)
                if i >= len(toks) or toks[i].text != "{":
                    return i + 1 if i < len(toks) else i
            else:
                break
        if i >= len(toks) or toks[i].text != "{":
            return i
        hot = any(t.text == "MMR_HOT_PATH" for t in head[:lo])
        fn = FunctionInfo(fn_cls, name, self.path, head[lo - 1].line,
                          head[lo - 1].line, hot=hot,
                          head_line=head[0].line if head else
                          head[lo - 1].line)
        fn._locals = {}
        if fn_cls:
            ci = self._class(fn_cls)
            ci.methods.add(name)
        self._param_decls(head[lo + 1:hi], name)
        for g_name, g_kind in self._param_container_map(head[lo + 1:hi]):
            fn._locals[g_name] = g_kind
        end = self._scan_body(i, fn)
        fn.end_line = toks[end - 1].line if end - 1 < len(toks) else \
            toks[-1].line
        self.obs.functions.append(fn)
        self.scan.functions.append(fn)
        return end

    def _param_container_map(self, params):
        out = []
        groups = [[]]
        pd = ad = 0
        for t in params:
            if t.text == "(":
                pd += 1
            elif t.text == ")":
                pd -= 1
            elif t.text == "<":
                ad += 1
            elif t.text == ">" and ad:
                ad -= 1
            if t.text == "," and pd == 0 and ad == 0:
                groups.append([])
            else:
                groups[-1].append(t)
        for g in groups:
            name = self._declared_name(g)
            kind = self._container_kind(g)
            if name and kind:
                out.append((name, kind))
        return out

    def _class(self, name) -> ClassInfo:
        return self.obs.classes.setdefault(
            name, ClassInfo(name, [], self.path, 0))

    def _scan_body(self, i, fn):
        """Scan a balanced function body starting at '{'; record calls,
        allocations, loops, subscripts, and local declarations."""
        toks = self.toks
        n = len(toks)
        depth = 0
        while i < n:
            t = toks[i]
            x = t.text
            if x == "{":
                depth += 1
            elif x == "}":
                depth -= 1
                if depth == 0:
                    return i + 1
            elif x == "for" and i + 1 < n and toks[i + 1].text == "(":
                self._range_for(i, fn)
            elif t.kind == IDENT:
                nxt = toks[i + 1].text if i + 1 < n else ""
                prev = toks[i - 1].text if i else ""
                if x == "new" and prev not in (".", "->", "::"):
                    what = "placement-new" if nxt == "(" else "new"
                    fn.alloc_sites.append(
                        SiteNote(what, self.path, t.line))
                elif x in UNORDERED or x in MAP_LIKE or x in SET_LIKE:
                    self._local_decl(i, fn)
                elif nxt == "(" and x not in _KEYWORDS:
                    is_member = prev in (".", "->")
                    qual = ""
                    if is_member and i >= 2 and toks[i - 2].kind == IDENT:
                        qual = toks[i - 2].text
                    elif prev == "::" and i >= 2 and \
                            toks[i - 2].kind == IDENT:
                        qual = toks[i - 2].text
                    fn.calls.append(CallSite(x, qual, is_member,
                                             self.path, t.line))
                    if x in ALLOC_FREE_CALLS and not is_member:
                        fn.alloc_sites.append(
                            SiteNote(x, self.path, t.line))
                    if x in ("begin", "cbegin", "rbegin") and is_member:
                        chain = self._chain_before(i - 1)
                        if chain:
                            self.scan.raw_loops.append(
                                (".".join(chain) + "." + x + "()",
                                 chain, fn, t.line, fn._locals))
                elif nxt == "[" and prev not in (".", "->", "::"):
                    self.scan.raw_subscripts.append(
                        (x, fn, t.line, fn._locals))
                elif x in ("make_unique", "make_shared") and nxt == "<":
                    fn.alloc_sites.append(SiteNote(x, self.path, t.line))
            i += 1
        return i

    def _local_decl(self, i, fn):
        """Token i names a container type inside a body: if this is a
        local declaration, record its name -> kind."""
        toks = self.toks
        kind = toks[i].text
        j = i + 1
        if j < len(toks) and toks[j].text == "<":
            depth = 0
            while j < len(toks):
                if toks[j].text == "<":
                    depth += 1
                elif toks[j].text == ">":
                    depth -= 1
                    if depth == 0:
                        j += 1
                        break
                elif toks[j].text == ">>":
                    depth -= 2
                    if depth <= 0:
                        j += 1
                        break
                elif toks[j].text in (";", "{", "}"):
                    return
                j += 1
        while j < len(toks) and toks[j].text in ("&", "*", "const"):
            j += 1
        if j < len(toks) and toks[j].kind == IDENT:
            fn._locals[toks[j].text] = kind

    def _chain_before(self, dot_idx):
        """Identifier chain ending at the '.'/'->' at dot_idx, e.g.
        ['harness', 'connRx()'] for harness.connRx()."""
        toks = self.toks
        chain = []
        k = dot_idx - 1
        while k >= 0:
            t = toks[k]
            if t.text == ")" and k >= 1 and toks[k - 1].text == "(" \
                    and k >= 2 and toks[k - 2].kind == IDENT:
                chain.append(toks[k - 2].text + "()")
                k -= 3
            elif t.kind == IDENT:
                chain.append(t.text)
                k -= 1
            else:
                break
            if k >= 0 and toks[k].text in (".", "->", "::"):
                k -= 1
            else:
                break
        chain.reverse()
        return chain

    def _range_for(self, i, fn):
        """Detect `for (decl : range)` and record the range expr."""
        toks = self.toks
        n = len(toks)
        depth = 0
        colon = None
        j = i + 1
        while j < n:
            x = toks[j].text
            if x == "(":
                depth += 1
            elif x == ")":
                depth -= 1
                if depth == 0:
                    break
            elif x == ":" and depth == 1:
                colon = j
            elif x == ";" and depth == 1:
                colon = None      # classic for loop
                break
            j += 1
        if colon is None or j >= n:
            return
        expr_toks = toks[colon + 1:j]
        expr = "".join(
            (t.text + (" " if t.kind == IDENT else ""))
            for t in expr_toks).strip()
        chain = []
        for t in expr_toks:
            if t.kind == IDENT:
                chain.append(t.text)
            elif t.text == "(" and chain:
                chain[-1] += "()"
            elif t.text in (".", "->", "::", ")", "*", "&"):
                continue
            else:
                chain = chain  # ignore other tokens
        self.scan.raw_loops.append(
            (expr, chain, fn, toks[colon].line, fn._locals))

    # -- pass 2: cross-file resolution ----------------------------------

    def _resolve(self):
        for scan in self.scans:
            for expr, chain, fn, line, locals_map in scan.raw_loops:
                kind = self._resolve_chain(chain, fn, locals_map)
                if kind in UNORDERED:
                    self.obs.loops.append(LoopSite(
                        expr, kind, fn.cls, fn.name, scan.path, line))
            for base, fn, line, locals_map in scan.raw_subscripts:
                kind = self._resolve_chain([base], fn, locals_map)
                if kind in MAP_LIKE:
                    fn.map_subscripts.append(SiteNote(
                        f"{base}[] ({kind}::operator[])",
                        scan.path, line))

    def _resolve_chain(self, chain, fn, locals_map):
        if not chain:
            return None
        last = chain[-1]
        if last.endswith("()"):
            return self.method_returns.get(last[:-2])
        if last in locals_map:
            return locals_map[last]
        if fn.cls and (fn.cls, last) in self.member_types:
            return self.member_types[(fn.cls, last)]
        if ("", last) in self.member_types:
            return self.member_types[("", last)]
        if len(chain) == 1:
            # Unqualified name: fall back to a unique project-wide
            # member with that name (headers declare, .cc iterates).
            hits = {k for (c, m), k in self.member_types.items()
                    if m == last}
            if len(hits) == 1:
                return next(iter(hits))
        else:
            # obj.member: resolve the member name across all classes.
            hits = {k for (c, m), k in self.member_types.items()
                    if m == last and c}
            if len(hits) == 1:
                return next(iter(hits))
        return self.aliases.get(last)
