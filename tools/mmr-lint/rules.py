"""Project-semantic rules for mmr-lint.

Each rule consumes the backend-independent Observations model and
yields Findings.  The rule catalog (ids, what fires, how to suppress)
is documented in DESIGN.md §10; keep the two in sync.

Rules
-----
unordered-iter      range-for / .begin() over std::unordered_* in
                    result-affecting code.  Iteration order is
                    implementation-defined: the same binary is
                    reproducible, but digests drift across standard
                    libraries and — for the planned sharded core —
                    across thread interleavings.  Fix: iterate a sorted
                    key snapshot, or annotate an order-insensitive loop
                    (pure commutative reduction) with a justification.
nondet-source       rand()/srand/std::random_device/wall-clock time
                    sources outside src/base/rng.*.  All randomness
                    must come from the seeded project Rng.
pointer-key         std::map/std::set keyed on a pointer: ordered by
                    address, i.e. by allocation order and ASLR.
hot-path-alloc      a function reachable from an MMR_HOT_PATH root
                    allocates (new/malloc/make_unique/to_string),
                    grows a container (push_back/insert/resize/...),
                    or subscripts a map (operator[] may insert).
                    Static complement of tests/harness/test_zero_alloc.
clocked-invariants  a Clocked subclass with no registerInvariants()
                    hook: every per-cycle component must expose its
                    self-checks to the invariant auditor.
clocked-simclock    evaluate()/advance() reading the global
                    simclock::now() instead of the kernel-provided
                    `now` parameter (a cached/global clock can lag the
                    kernel inside a cycle; in the sharded core it will
                    be another shard's clock).
cycle-type          raw builtin integer (int/long/unsigned/...) used
                    for a flit-cycle time point or duration where the
                    Cycle type exists.  Per-round *slot budgets*
                    (allocCycles/permCycles/peakCycles/roundCycles/
                    cycles_per_round) are unsigned by design (bounded
                    by k*V <= 64 slots, paper §4.2) and are exempt.
"""

from __future__ import annotations

import re

from project_model import Finding, Observations

ALL_RULES = [
    "unordered-iter",
    "nondet-source",
    "pointer-key",
    "hot-path-alloc",
    "clocked-invariants",
    "clocked-simclock",
    "cycle-type",
]

# Files allowed to touch raw randomness / wall-clock sources: the
# project RNG wraps them (SplitMix64 seeding), nothing else may.
NONDET_EXEMPT_SUFFIXES = ("base/rng.cc", "base/rng.hh")

# Member calls that may (re)allocate on any standard container.
ALLOC_MEMBER_CALLS = {
    "push_back", "emplace_back", "push_front", "emplace_front",
    "emplace", "insert", "resize", "reserve", "push", "assign",
    "append", "shrink_to_fit",
}

# Member names shared with the standard container/iterator API.  A
# bare `x.name()` with one of these names is overwhelmingly a std
# container call, so the closure never follows it to a same-named
# project method by name alone (the allocating subset is still flagged
# at the call site itself).
STD_MEMBER_NAMES = ALLOC_MEMBER_CALLS | {
    "begin", "end", "rbegin", "rend", "cbegin", "cend", "size",
    "empty", "clear", "front", "back", "at", "find", "count",
    "erase", "pop", "pop_back", "pop_front", "top", "data", "swap",
    "get", "reset", "release", "str", "c_str", "substr", "length",
    "first", "second", "min", "max", "contains", "value", "emplace",
}

# Declared names that denote flit-cycle times/durations.
CYCLE_NAME_RE = re.compile(
    r"(?i)(?:^|_)(?:cycle|cycles|tick|ticks|deadline|timeout|when|"
    r"expiry|latency)(?:$|_)"
    r"|[a-z0-9](?:Cycle|Cycles|Tick|Ticks|Deadline|Timeout|Expiry|"
    r"Latency)(?:[A-Z]|$)")
# Per-round slot budgets (bandwidth shares, not times) stay unsigned.
CYCLE_EXEMPT_RE = re.compile(
    r"(?i)^(?:alloc|perm|peak|round|old|new|excess)_?cycles?$"
    r"|cycles?_?per_?round|^round_?factor|^decode_?cycles$")


def _supp(obs: Observations, rule: str, file: str, *lines) -> bool:
    per_file = obs.suppressions.get(file, {})
    if rule in per_file.get(0, set()):
        return True
    return any(rule in per_file.get(line, set())
               for line in lines if line)


def _mk(rule, file, line, msg):
    return Finding(rule, file, line, msg, key="")


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------

def rule_unordered_iter(obs: Observations):
    for lp in obs.loops:
        if _supp(obs, "unordered-iter", lp.file, lp.line):
            continue
        where = f"{lp.cls}::{lp.func}" if lp.cls else (lp.func or "?")
        yield _mk(
            "unordered-iter", lp.file, lp.line,
            f"iteration over std::{lp.container} '{lp.expr}' in "
            f"{where}: order is implementation-defined; iterate a "
            f"sorted key snapshot or annotate an order-insensitive "
            f"loop with `// mmr-lint: allow(unordered-iter) <why>`")


def rule_nondet_source(obs: Observations):
    for use in obs.ident_uses:
        norm = use.file.replace("\\", "/")
        if norm.endswith(NONDET_EXEMPT_SUFFIXES):
            continue
        if _supp(obs, "nondet-source", use.file, use.line):
            continue
        what = {"call0": f"{use.name}() call",
                "name": f"use of {use.name}"}[use.context]
        yield _mk(
            "nondet-source", use.file, use.line,
            f"{what}: nondeterministic source outside src/base/rng.*; "
            f"derive randomness from the seeded mmr::Rng and simulated "
            f"time from the kernel cycle")


def rule_pointer_key(obs: Observations):
    for d in obs.decls:
        if "<ptr-key>" not in d.type_text:
            continue
        if _supp(obs, "pointer-key", d.file, d.line):
            continue
        kind = d.type_text.replace("<ptr-key>", "")
        yield _mk(
            "pointer-key", d.file, d.line,
            f"'{d.name}' is a std::{kind} keyed on a pointer: ordered "
            f"by address, so iteration order varies run to run; key on "
            f"a stable id instead")


# ----------------------------------------------------------------------
# hot-path allocation
# ----------------------------------------------------------------------

def _hot_in_hierarchy(obs: Observations, cls, name, _depth=0):
    """Is @p name declared MMR_HOT_PATH on @p cls or any base?  An
    override of a hot virtual inherits the hot-path contract."""
    if _depth > 8 or cls not in obs.classes:
        return False
    ci = obs.classes[cls]
    if name in ci.hot_decls:
        return True
    return any(_hot_in_hierarchy(obs, b, name, _depth + 1)
               for b in ci.bases)


def _hot_roots(obs: Observations):
    for fn in obs.functions:
        if fn.hot:
            yield fn
        elif fn.cls and _hot_in_hierarchy(obs, fn.cls, fn.name):
            yield fn


def _resolve_call(obs: Observations, index, fn, call):
    """Project functions a call site may reach, or [] when the call is
    external / unresolvable.

    Name matching alone massively over-approximates (every `.advance()`
    would edge into every class with an advance method), so edges are
    kept only when the receiver is determinable:

    - `Cls::f()` / `ns::f()`: methods of exactly that class.
    - bare `f()` inside a method: same-class methods first (implicit
      this->), else free functions named f.
    - `x.f()` / `x->f()`: followed only when exactly one project class
      defines f — and never for names shared with the std container
      API, which would otherwise alias (`q.push` is not Tracer::push).
    """
    cands = index.get(call.name, ())
    if not cands:
        return []
    if call.qualifier and call.qualifier[:1].isupper():
        return [c for c in cands if c.cls == call.qualifier]
    if not call.is_member and not call.qualifier:
        own = [c for c in cands if c.cls and c.cls == fn.cls]
        if own:
            return own
        return [c for c in cands if c.cls is None]
    if call.name in STD_MEMBER_NAMES:
        return []
    classes = {c.cls for c in cands if c.cls}
    if len(classes) == 1:
        return [c for c in cands if c.cls]
    return []


def _closure(obs: Observations, roots):
    """(function -> (root, parent)) over resolved project calls."""
    index = obs.function_index()
    seen = {}
    work = []
    for r in roots:
        key = (r.cls, r.name, r.file, r.line)
        if key not in seen:
            seen[key] = (r, None)
            work.append(r)
    while work:
        fn = work.pop()
        for call in fn.calls:
            for cand in _resolve_call(obs, index, fn, call):
                key = (cand.cls, cand.name, cand.file, cand.line)
                if key not in seen:
                    seen[key] = (cand, fn)
                    work.append(cand)
    return seen


def _path_to_root(seen, fn):
    names = [fn.qualname]
    key = (fn.cls, fn.name, fn.file, fn.line)
    while True:
        _, parent = seen[key]
        if parent is None:
            break
        names.append(parent.qualname)
        key = (parent.cls, parent.name, parent.file, parent.line)
    return " <- ".join(names)


def rule_hot_path_alloc(obs: Observations):
    index = obs.function_index()
    roots = list(_hot_roots(obs))
    seen = _closure(obs, roots)
    for (cls, name, file, line), (fn, _parent) in sorted(
            seen.items(), key=lambda kv: (kv[0][2], kv[0][3])):
        chain = _path_to_root(seen, fn)
        sites = []
        for note in fn.alloc_sites:
            if note.what == "placement-new":
                continue
            sites.append((note.line, f"'{note.what}'"))
        for call in fn.calls:
            if call.is_member and call.name in ALLOC_MEMBER_CALLS and \
                    not _resolve_call(obs, index, fn, call):
                sites.append(
                    (call.line,
                     f"container growth '.{call.name}()'"
                     + (f" on '{call.qualifier}'"
                        if call.qualifier else "")))
        for note in fn.map_subscripts:
            sites.append((note.line,
                          f"map subscript {note.what} may insert"))
        for sline, what in sorted(sites):
            if _supp(obs, "hot-path-alloc", file, sline, fn.line,
                     fn.head_line):
                continue
            yield _mk(
                "hot-path-alloc", file, sline,
                f"{what} in {fn.qualname}, reachable from an "
                f"MMR_HOT_PATH root ({chain}); steady-state scheduling "
                f"must not allocate (see test_zero_alloc) — "
                f"preallocate, or annotate with a capacity argument")


# ----------------------------------------------------------------------
# clocked-component contracts
# ----------------------------------------------------------------------

def _clocked_classes(obs: Observations):
    return {name: ci for name, ci in obs.classes.items()
            if "Clocked" in ci.bases}


def rule_clocked_invariants(obs: Observations):
    for name, ci in sorted(_clocked_classes(obs).items()):
        if "registerInvariants" in ci.methods:
            continue
        if _supp(obs, "clocked-invariants", ci.file, ci.line):
            continue
        yield _mk(
            "clocked-invariants", ci.file, ci.line,
            f"Clocked subclass {name} has no registerInvariants("
            f"InvariantChecker&): every per-cycle component must "
            f"register its self-checks (or annotate a pure "
            f"observer/auditor with a justification)")


def rule_clocked_simclock(obs: Observations):
    clocked = _clocked_classes(obs)
    for fn in obs.functions:
        if fn.name not in ("evaluate", "advance"):
            continue
        if fn.cls not in clocked:
            continue
        for call in fn.calls:
            if call.qualifier == "simclock" and \
                    call.name in ("now", "active"):
                if _supp(obs, "clocked-simclock", call.file,
                         call.line, fn.line):
                    continue
                yield _mk(
                    "clocked-simclock", call.file, call.line,
                    f"{fn.qualname} reads simclock::{call.name}() "
                    f"instead of its kernel-provided `now` parameter; "
                    f"a Clocked tick must take time from the kernel, "
                    f"never a global/cached clock")


# ----------------------------------------------------------------------
# API hygiene
# ----------------------------------------------------------------------

def rule_cycle_type(obs: Observations):
    for d in obs.decls:
        if "<ptr-key>" in d.type_text or d.type_text in (
                "unordered_map", "unordered_set", "map", "set",
                "multimap", "multiset", "unordered_multimap",
                "unordered_multiset"):
            continue
        if not CYCLE_NAME_RE.search(d.name):
            continue
        if CYCLE_EXEMPT_RE.search(d.name):
            continue
        if _supp(obs, "cycle-type", d.file, d.line):
            continue
        yield _mk(
            "cycle-type", d.file, d.line,
            f"'{d.type_text} {d.name}' ({d.scope}): flit-cycle times "
            f"and durations use the mmr::Cycle type, not raw "
            f"'{d.type_text}' (per-round slot budgets like allocCycles "
            f"are exempt by convention)")


RULE_FUNCS = {
    "unordered-iter": rule_unordered_iter,
    "nondet-source": rule_nondet_source,
    "pointer-key": rule_pointer_key,
    "hot-path-alloc": rule_hot_path_alloc,
    "clocked-invariants": rule_clocked_invariants,
    "clocked-simclock": rule_clocked_simclock,
    "cycle-type": rule_cycle_type,
}


def run_rules(obs: Observations, enabled=None):
    enabled = list(enabled) if enabled else ALL_RULES
    findings = []
    for rule in enabled:
        findings.extend(RULE_FUNCS[rule](obs))
    findings.sort(key=lambda f: (f.file, f.line, f.rule))
    return findings
