"""libclang (clang.cindex) backend for mmr-lint.

Preferred when python3 clang bindings and a libclang shared library are
available (the CI mmr-lint job installs python3-clang); builds the same
Observations model as the token backend but with real type resolution:
range-for ranges, declaration types, and member calls come from the
AST, so aliasing and templates resolve exactly.

Importing this module raises when the bindings or the library are
missing; mmr_lint.py catches that and falls back to the token backend.
"""

from __future__ import annotations

import json
import os
import re

import clang.cindex as ci

from project_model import (CallSite, ClassInfo, FunctionInfo, IdentUse,
                           LoopSite, Observations, SiteNote, VarDecl)
from text_backend import (MAP_LIKE, NONDET_ANY, NONDET_CALL0, SET_LIKE,
                          UNORDERED)
from cpp_lexer import lex  # suppression comments come from the lexer
from text_backend import _SUPPRESS_RE

# Probe that a libclang shared object actually loads (the import above
# only loads the pure-python bindings).
if not ci.Config.loaded:
    try:
        ci.Index.create()
    except ci.LibclangError:
        # Try the versioned sonames Debian/Ubuntu ship.
        for ver in ("", "-18", "-17", "-16", "-15", "-14"):
            try:
                ci.Config.set_library_file(f"libclang{ver}.so.1")
                ci.Index.create()
                break
            except Exception:
                ci.Config.loaded = False
        else:
            raise


_CONTAINER_RE = re.compile(
    r"\b(unordered_(?:multi)?(?:map|set)|(?:multi)?map|(?:multi)?set)<")

HOT_ANNOTATION = "mmr::hot_path"


def _container_kind(type_spelling: str):
    m = _CONTAINER_RE.search(type_spelling)
    return m.group(1) if m else None


def _ptr_key(type_spelling: str) -> bool:
    m = _CONTAINER_RE.search(type_spelling)
    if not m:
        return False
    rest = type_spelling[m.end():]
    depth = 0
    for c in rest:
        if c == "<":
            depth += 1
        elif c == ">" and depth:
            depth -= 1
        elif depth == 0 and c in ",>":
            break
        elif depth == 0 and c == "*":
            return True
    return False


class ClangBackend:
    name = "clang"

    def __init__(self, compile_commands=None):
        self.index = ci.Index.create()
        self.args_for = {}
        self.default_args = ["-std=c++20", "-Isrc", "-I."]
        if compile_commands and os.path.isfile(compile_commands):
            with open(compile_commands) as f:
                for entry in json.load(f):
                    args = entry.get("arguments")
                    if not args and "command" in entry:
                        args = entry["command"].split()
                    flags = []
                    skip = False
                    for a in (args or [])[1:]:
                        if skip:
                            skip = False
                            continue
                        if a in ("-c", "-o"):
                            skip = a == "-o"
                            continue
                        if a.endswith((".cc", ".cpp", ".o")):
                            continue
                        flags.append(a)
                    self.args_for[os.path.abspath(
                        os.path.join(entry.get("directory", "."),
                                     entry["file"]))] = flags

    # -- entry ----------------------------------------------------------

    def analyze(self, files: dict[str, str]) -> Observations:
        obs = Observations()
        obs.files = sorted(files)
        self.obs = obs
        self.wanted = set(files)
        for rel, source in sorted(files.items()):
            self._suppressions(rel, source)
        # Parse only translation units; headers are analyzed through
        # the TUs that include them (and once standalone if never
        # included, to keep header-only findings).
        seen_files = set()
        tus = [f for f in sorted(files) if f.endswith((".cc", ".cpp"))]
        for rel in tus:
            self._parse(rel, files, seen_files)
        for rel in sorted(self.wanted - seen_files):
            if rel.endswith((".hh", ".hpp", ".h")):
                self._parse(rel, files, seen_files, header=True)
        return obs

    def _suppressions(self, rel, source):
        import bisect
        toks, comments = lex(source)
        supp = self.obs.suppressions.setdefault(rel, {})
        tok_lines = [t.line for t in toks]
        for c in comments:
            m = _SUPPRESS_RE.search(c.text)
            if not m:
                continue
            rules = {r.strip() for r in m.group(2).split(",")
                     if r.strip()}
            if m.group(1) == "allow-file":
                supp.setdefault(0, set()).update(rules)
                continue
            supp.setdefault(c.line, set()).update(rules)
            if c.own_line:
                k = bisect.bisect_right(tok_lines, c.end_line)
                if k < len(tok_lines):
                    supp.setdefault(tok_lines[k], set()).update(rules)

    def _parse(self, rel, files, seen_files, header=False):
        path = os.path.abspath(rel)
        args = self.args_for.get(path, self.default_args)
        if header:
            args = list(args) + ["-x", "c++-header"]
        tu = self.index.parse(rel, args=args,
                              options=ci.TranslationUnit
                              .PARSE_DETAILED_PROCESSING_RECORD)
        for cur in tu.cursor.walk_preorder():
            loc_file = cur.location.file
            if loc_file is None:
                continue
            loc_rel = os.path.relpath(loc_file.name)
            if loc_rel not in self.wanted or loc_rel in seen_files:
                if loc_rel not in self.wanted:
                    continue
            self._visit(cur, loc_rel)
        for f in tu.get_includes():
            inc_rel = os.path.relpath(f.include.name) \
                if f.include else None
            if inc_rel in self.wanted:
                seen_files.add(inc_rel)
        seen_files.add(rel)

    # -- cursor dispatch -----------------------------------------------

    def _visit(self, cur, rel):
        kind = cur.kind
        if kind in (ci.CursorKind.CLASS_DECL, ci.CursorKind.STRUCT_DECL) \
                and cur.is_definition():
            self._class(cur, rel)
        elif kind in (ci.CursorKind.CXX_METHOD,
                      ci.CursorKind.FUNCTION_DECL,
                      ci.CursorKind.CONSTRUCTOR,
                      ci.CursorKind.DESTRUCTOR) and cur.is_definition():
            self._function(cur, rel)
        elif kind in (ci.CursorKind.FIELD_DECL, ci.CursorKind.VAR_DECL,
                      ci.CursorKind.PARM_DECL):
            self._decl(cur, rel)
        elif kind == ci.CursorKind.DECL_REF_EXPR:
            self._ref(cur, rel)

    def _class(self, cur, rel):
        name = cur.spelling
        info = self.obs.classes.setdefault(
            name, ClassInfo(name, [], rel, cur.location.line))
        for ch in cur.get_children():
            if ch.kind == ci.CursorKind.CXX_BASE_SPECIFIER:
                base = ch.type.spelling.split("<")[0].split("::")[-1]
                info.bases.append(base)
            elif ch.kind == ci.CursorKind.CXX_METHOD:
                info.methods.add(ch.spelling)
                if self._is_hot(ch):
                    info.hot_decls.add(ch.spelling)

    @staticmethod
    def _is_hot(cur):
        return any(ch.kind == ci.CursorKind.ANNOTATE_ATTR and
                   ch.spelling == HOT_ANNOTATION
                   for ch in cur.get_children())

    def _function(self, cur, rel):
        cls = None
        parent = cur.semantic_parent
        if parent is not None and parent.kind in (
                ci.CursorKind.CLASS_DECL, ci.CursorKind.STRUCT_DECL):
            cls = parent.spelling
        fn = FunctionInfo(cls, cur.spelling, rel, cur.location.line,
                          cur.extent.end.line, hot=self._is_hot(cur),
                          head_line=cur.extent.start.line)
        for node in cur.walk_preorder():
            nk = node.kind
            nrel = (os.path.relpath(node.location.file.name)
                    if node.location.file else rel)
            if nk == ci.CursorKind.CXX_NEW_EXPR:
                fn.alloc_sites.append(
                    SiteNote("new", nrel, node.location.line))
            elif nk == ci.CursorKind.CALL_EXPR:
                callee = node.referenced
                name = node.spelling or (callee.spelling if callee
                                         else "")
                if not name:
                    continue
                is_member = callee is not None and \
                    callee.kind == ci.CursorKind.CXX_METHOD
                qual = ""
                if is_member and callee.semantic_parent is not None:
                    qual = callee.semantic_parent.spelling
                fn.calls.append(CallSite(name, qual, is_member, nrel,
                                         node.location.line))
                if name in ("malloc", "calloc", "realloc", "strdup",
                            "aligned_alloc", "make_unique",
                            "make_shared", "to_string"):
                    fn.alloc_sites.append(
                        SiteNote(name, nrel, node.location.line))
                if name == "operator[]" and is_member and \
                        _container_kind(
                            callee.semantic_parent.type.spelling
                            if callee.semantic_parent else "") \
                        in MAP_LIKE:
                    fn.map_subscripts.append(SiteNote(
                        "operator[] (map) may insert", nrel,
                        node.location.line))
                if name in ("begin", "cbegin", "rbegin") and is_member:
                    parent_t = (callee.semantic_parent.type.spelling
                                if callee.semantic_parent else "")
                    kind2 = _container_kind(parent_t)
                    if kind2 in UNORDERED:
                        self.obs.loops.append(LoopSite(
                            f"{name}()", kind2, cls, cur.spelling,
                            nrel, node.location.line))
            elif nk == ci.CursorKind.CXX_FOR_RANGE_STMT:
                children = list(node.get_children())
                if len(children) >= 2:
                    rng = children[-2]
                    kind2 = _container_kind(
                        rng.type.get_canonical().spelling or
                        rng.type.spelling)
                    if kind2 in UNORDERED:
                        expr = " ".join(
                            t.spelling for t in rng.get_tokens())[:60]
                        self.obs.loops.append(LoopSite(
                            expr, kind2, cls, cur.spelling, nrel,
                            node.location.line))
        self.obs.functions.append(fn)

    def _decl(self, cur, rel):
        spelling = cur.type.get_canonical().spelling or \
            cur.type.spelling
        kind = _container_kind(spelling)
        scope = "local:"
        parent = cur.semantic_parent
        if cur.kind == ci.CursorKind.FIELD_DECL and parent is not None:
            scope = f"member:{parent.spelling}"
        elif cur.kind == ci.CursorKind.PARM_DECL and parent is not None:
            scope = f"param:{parent.spelling}"
        if kind:
            marker = "<ptr-key>" if (kind in MAP_LIKE or kind in
                                     SET_LIKE) and _ptr_key(spelling) \
                else ""
            self.obs.decls.append(VarDecl(
                cur.spelling, kind + marker, scope, rel,
                cur.location.line))
            return
        base = spelling.replace("const", "").strip()
        if base in ("int", "long", "short", "unsigned int",
                    "unsigned long", "unsigned short", "unsigned"):
            if cur.spelling:
                self.obs.decls.append(VarDecl(
                    cur.spelling, base, scope, rel, cur.location.line))

    def _ref(self, cur, rel):
        name = cur.spelling
        if name in NONDET_ANY:
            self.obs.ident_uses.append(
                IdentUse(name, "name", rel, cur.location.line))
        elif name in NONDET_CALL0 or name in ("srand", "time"):
            # Only flag the call forms; bare references to project
            # members that happen to share a name stay clean.
            ref = cur.referenced
            if ref is not None and ref.location.file is not None:
                return  # project-defined symbol, not libc
            self.obs.ident_uses.append(
                IdentUse(name, "call0", rel, cur.location.line))
