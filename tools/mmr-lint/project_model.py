"""Shared intermediate model between mmr-lint backends and rules.

Both the libclang backend and the token backend reduce a source tree to
the same set of *observations*; the rules in rules.py only ever see
this model, so findings are backend-independent by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""
    name: str          # simple callee name ("push_back", "evaluate")
    qualifier: str     # "obj" for obj.f()/obj->f(), "Cls" for Cls::f(), ""
    is_member: bool    # called through . or ->
    file: str
    line: int


@dataclass
class FunctionInfo:
    """A function *definition* (has a body)."""
    cls: str | None    # enclosing/qualifying class, None for free fns
    name: str
    file: str
    line: int          # line of the name in the definition
    end_line: int
    hot: bool = False  # MMR_HOT_PATH on this definition
    head_line: int = 0  # first line of the head (return type line)
    calls: list[CallSite] = field(default_factory=list)
    # Container subscripts obj[...] where obj resolves to a map type
    # (operator[] may insert, i.e. allocate).
    map_subscripts: list["SiteNote"] = field(default_factory=list)
    # Direct allocation expressions in the body: ("new", line), etc.
    alloc_sites: list["SiteNote"] = field(default_factory=list)

    @property
    def qualname(self) -> str:
        return f"{self.cls}::{self.name}" if self.cls else self.name


@dataclass(frozen=True)
class SiteNote:
    """A (what, where) note attached to a function body."""
    what: str
    file: str
    line: int


@dataclass(frozen=True)
class VarDecl:
    """A declaration whose type the rules care about."""
    name: str
    type_text: str     # normalized type spelling
    scope: str         # "member:<Class>" | "local:<Func>" | "param:<Func>"
    file: str
    line: int


@dataclass(frozen=True)
class LoopSite:
    """A range-for (or .begin() use) whose range resolved to a type."""
    expr: str          # source text of the range expression
    container: str     # resolved container kind: "unordered_map", ...
    cls: str | None    # enclosing class
    func: str | None   # enclosing function name
    file: str
    line: int


@dataclass(frozen=True)
class IdentUse:
    """Use of a watched identifier (rand, random_device, ...)."""
    name: str
    context: str       # "call0" (nullary call), "call", "name"
    file: str
    line: int


@dataclass
class ClassInfo:
    name: str
    bases: list[str]
    file: str
    line: int
    methods: set[str] = field(default_factory=set)
    hot_decls: set[str] = field(default_factory=set)  # MMR_HOT_PATH decls


@dataclass
class Observations:
    """Everything the rules need, for the whole analyzed tree."""
    files: list[str] = field(default_factory=list)
    functions: list[FunctionInfo] = field(default_factory=list)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    decls: list[VarDecl] = field(default_factory=list)
    loops: list[LoopSite] = field(default_factory=list)
    ident_uses: list[IdentUse] = field(default_factory=list)
    # (file, line) -> set of rules suppressed there (from comments)
    suppressions: dict[str, dict[int, set[str]]] = field(default_factory=dict)

    def function_index(self) -> dict[str, list[FunctionInfo]]:
        """simple name -> definitions with that name."""
        idx: dict[str, list[FunctionInfo]] = {}
        for fn in self.functions:
            idx.setdefault(fn.name, []).append(fn)
        return idx


@dataclass(frozen=True)
class Finding:
    rule: str
    file: str
    line: int
    message: str
    # Stable content key for baselining (survives line-number drift).
    key: str

    def format(self) -> str:
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"
