#!/usr/bin/env python3
"""mmr-lint: project-semantic static analysis for the MMR simulator.

Enforces, at compile review time, the contracts the test suite can only
check at runtime: bit-exact determinism (no unordered iteration in
result-affecting code, no randomness outside the seeded Rng), zero
steady-state allocation on MMR_HOT_PATH-annotated per-cycle paths, the
Clocked component contract, and Cycle-type API hygiene.  See DESIGN.md
§10 for the rule catalog.

Backends: prefers libclang (python3 clang.cindex) when importable and a
compile_commands.json is supplied; otherwise falls back to the built-in
token backend, which needs no toolchain at all.  Findings are
backend-independent.

Usage:
  tools/mmr-lint/mmr_lint.py [paths...]          # default: src/
      --root DIR                 repo root (default: auto-detect)
      --backend auto|clang|text  (default: auto)
      --compile-commands FILE    compile_commands.json for libclang
      --baseline FILE            suppress previously accepted findings
      --write-baseline           rewrite the baseline from this run
      --rules r1,r2              run a subset of rules
      --format text|json         report format (default: text)
      --report FILE              also write a JSON findings report
      --list-rules               print rule ids and exit

Exit status: 0 clean (or all findings baselined), 1 findings, 2 error.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import rules as rules_mod  # noqa: E402
from project_model import Finding  # noqa: E402
from text_backend import TextBackend  # noqa: E402


def find_root(start):
    d = os.path.abspath(start)
    while d != "/":
        if os.path.isdir(os.path.join(d, ".git")) or \
                os.path.isfile(os.path.join(d, "CMakeLists.txt")):
            return d
        d = os.path.dirname(d)
    return os.path.abspath(start)


def collect_files(root, paths, compile_commands):
    """{relpath: source} for every .cc/.hh under the given paths; a
    compile database adds its translation units to the set."""
    rels = set()
    for p in paths:
        ap = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(ap):
            rels.add(os.path.relpath(ap, root))
            continue
        for dirpath, _dirs, names in os.walk(ap):
            for name in names:
                if name.endswith((".cc", ".hh", ".cpp", ".hpp", ".h")):
                    rels.add(os.path.relpath(
                        os.path.join(dirpath, name), root))
    if compile_commands:
        try:
            with open(compile_commands) as f:
                for entry in json.load(f):
                    ap = os.path.join(entry.get("directory", root),
                                      entry["file"])
                    rel = os.path.relpath(os.path.abspath(ap), root)
                    if not rel.startswith("..") and any(
                            rel.startswith(p.rstrip("/") + "/")
                            for p in paths):
                        rels.add(rel)
        except (OSError, ValueError, KeyError) as e:
            print(f"mmr-lint: warning: bad compile db: {e}",
                  file=sys.stderr)
    files = {}
    for rel in sorted(rels):
        try:
            with open(os.path.join(root, rel), encoding="utf-8",
                      errors="replace") as f:
                files[rel] = f.read()
        except OSError as e:
            print(f"mmr-lint: warning: cannot read {rel}: {e}",
                  file=sys.stderr)
    return files


def make_backend(choice, compile_commands):
    """Instantiate the requested backend, honouring --backend=auto by
    degrading to the token backend when libclang is missing."""
    if choice in ("auto", "clang"):
        try:
            from clang_backend import ClangBackend
            return ClangBackend(compile_commands)
        except Exception as e:  # ImportError, libclang load failure
            if choice == "clang":
                print(f"mmr-lint: error: libclang backend unavailable: "
                      f"{e}", file=sys.stderr)
                sys.exit(2)
            print(f"mmr-lint: note: libclang unavailable "
                  f"({e.__class__.__name__}); using token backend",
                  file=sys.stderr)
    return TextBackend()


def finding_key(root, f: Finding, line_cache):
    """Stable content hash: rule + file + source line text, so the
    baseline survives unrelated line-number drift."""
    lines = line_cache.get(f.file)
    if lines is None:
        try:
            with open(os.path.join(root, f.file), encoding="utf-8",
                      errors="replace") as fh:
                lines = fh.read().splitlines()
        except OSError:
            lines = []
        line_cache[f.file] = lines
    text = lines[f.line - 1].strip() if 0 < f.line <= len(lines) else ""
    h = hashlib.sha1(
        f"{f.rule}|{f.file}|{text}".encode()).hexdigest()[:16]
    return f"{f.rule}|{f.file}|{h}"


def load_baseline(path):
    entries = set()
    if path and os.path.isfile(path):
        with open(path) as f:
            for line in f:
                line = line.strip()
                if line and not line.startswith("#"):
                    entries.add(line)
    return entries


def write_baseline(path, keys):
    with open(path, "w") as f:
        f.write("# mmr-lint baseline: accepted pre-existing findings.\n"
                "# Format: <rule>|<file>|<sha1[:16] of source line>.\n"
                "# Regenerate with: mmr_lint.py --write-baseline\n"
                "# This file is intentionally empty when the tree is\n"
                "# clean; new findings must be fixed or annotated, not\n"
                "# baselined, except during large migrations.\n")
        for k in sorted(keys):
            f.write(k + "\n")


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="mmr-lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="*", default=None)
    ap.add_argument("--root", default=None)
    ap.add_argument("--backend", choices=["auto", "clang", "text"],
                    default="auto")
    ap.add_argument("--compile-commands", default=None)
    ap.add_argument("--baseline", default=None)
    ap.add_argument("--no-baseline", action="store_true",
                    help="ignore any baseline file (report everything)")
    ap.add_argument("--write-baseline", action="store_true")
    ap.add_argument("--rules", default=None)
    ap.add_argument("--format", choices=["text", "json"],
                    default="text")
    ap.add_argument("--report", default=None)
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--quiet", action="store_true")
    args = ap.parse_args(argv)

    if args.list_rules:
        for r in rules_mod.ALL_RULES:
            print(r)
        return 0

    root = args.root or find_root(os.getcwd())
    paths = args.paths or ["src"]
    enabled = None
    if args.rules:
        enabled = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = set(enabled) - set(rules_mod.ALL_RULES)
        if unknown:
            print(f"mmr-lint: unknown rule(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2

    baseline_path = args.baseline
    if baseline_path is None:
        cand = os.path.join(root, "tools", "mmr-lint", "baseline.txt")
        baseline_path = cand if os.path.isfile(cand) else None
    if args.no_baseline:
        baseline_path = None

    files = collect_files(root, paths, args.compile_commands)
    if not files:
        print("mmr-lint: no input files", file=sys.stderr)
        return 2

    backend = (TextBackend() if args.backend == "text"
               else make_backend(args.backend, args.compile_commands))
    obs = backend.analyze(files)
    findings = rules_mod.run_rules(obs, enabled)

    line_cache = {}
    keyed = [(finding_key(root, f, line_cache), f) for f in findings]

    if args.write_baseline:
        out = args.baseline or os.path.join(
            root, "tools", "mmr-lint", "baseline.txt")
        write_baseline(out, [k for k, _ in keyed])
        print(f"mmr-lint: wrote {len(keyed)} baseline entries to {out}")
        return 0

    baseline = load_baseline(baseline_path)
    new = [(k, f) for k, f in keyed if k not in baseline]
    suppressed = len(keyed) - len(new)

    if args.report or args.format == "json":
        payload = {
            "backend": backend.name,
            "files": len(files),
            "rules": enabled or rules_mod.ALL_RULES,
            "total": len(keyed),
            "baselined": suppressed,
            "findings": [
                {"rule": f.rule, "file": f.file, "line": f.line,
                 "message": f.message, "key": k,
                 "baselined": k in baseline}
                for k, f in keyed
            ],
        }
        if args.report:
            with open(args.report, "w") as fh:
                json.dump(payload, fh, indent=1)
        if args.format == "json":
            json.dump(payload, sys.stdout, indent=1)
            print()

    if args.format == "text":
        for _k, f in new:
            print(f.format())
        if not args.quiet:
            print(f"mmr-lint[{backend.name}]: {len(files)} files, "
                  f"{len(keyed)} finding(s), {suppressed} baselined, "
                  f"{len(new)} new", file=sys.stderr)
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
