"""Minimal C++ lexer for the mmr-lint text backend.

Produces a flat token stream (identifier / number / punctuation) with
line numbers, plus a side list of comments so suppression directives
(`// mmr-lint: allow(<rule>) ...`) survive lexing.  String and char
literals are collapsed to single STRING/CHAR tokens, preprocessor
directives to PP tokens, so the structural scanner never trips on
braces inside literals or macros.

This is not a conforming C++ lexer; it is exactly as much lexer as the
project-semantic rules need, and it is fully deterministic.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

IDENT = "ident"
NUMBER = "number"
PUNCT = "punct"
STRING = "string"
CHAR = "char"
PP = "pp"

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_NUMBER_RE = re.compile(r"(?:0[xX][0-9a-fA-F']+|[0-9][0-9a-fA-F'.xXeEpP+-]*)")
# Longest-first so '->' beats '-', '::' beats ':'.
_PUNCTS = [
    "<<=", ">>=", "...", "->*", "<=>",
    "::", "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
]


@dataclass
class Token:
    kind: str
    text: str
    line: int


@dataclass
class Comment:
    text: str
    line: int        # line the comment starts on
    end_line: int
    own_line: bool   # no code precedes it on its first line


def lex(source: str):
    """Return (tokens, comments) for one translation unit."""
    tokens: list[Token] = []
    comments: list[Comment] = []
    i = 0
    line = 1
    n = len(source)
    line_had_code = False

    def add(kind, text):
        nonlocal line_had_code
        tokens.append(Token(kind, text, line))
        line_had_code = True

    while i < n:
        c = source[i]
        if c == "\n":
            line += 1
            line_had_code = False
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        # Comments -----------------------------------------------------
        if c == "/" and i + 1 < n:
            nxt = source[i + 1]
            if nxt == "/":
                j = source.find("\n", i)
                j = n if j < 0 else j
                comments.append(
                    Comment(source[i:j], line, line, not line_had_code))
                i = j
                continue
            if nxt == "*":
                j = source.find("*/", i + 2)
                j = n - 2 if j < 0 else j
                text = source[i:j + 2]
                end_line = line + text.count("\n")
                comments.append(Comment(text, line, end_line,
                                        not line_had_code))
                line = end_line
                i = j + 2
                continue
        # Preprocessor -------------------------------------------------
        if c == "#" and not line_had_code:
            j = i
            while j < n:
                k = source.find("\n", j)
                k = n if k < 0 else k
                if source[k - 1] == "\\" if k > 0 else False:
                    j = k + 1
                    continue
                break
            text = source[i:k]
            add(PP, text)
            line += text.count("\n")
            i = k
            continue
        # Raw strings --------------------------------------------------
        if c == "R" and source[i:i + 2] == 'R"':
            m = re.match(r'R"([^()\\ ]{0,16})\(', source[i:])
            if m:
                delim = m.group(1)
                close = ")" + delim + '"'
                j = source.find(close, i + m.end())
                j = n - len(close) if j < 0 else j
                text = source[i:j + len(close)]
                add(STRING, text)
                line += text.count("\n")
                i = j + len(close)
                continue
        # Strings / chars ----------------------------------------------
        if c == '"' or c == "'":
            j = i + 1
            while j < n and source[j] != c:
                if source[j] == "\\":
                    j += 1
                j += 1
            text = source[i:j + 1]
            add(STRING if c == '"' else CHAR, text)
            line += text.count("\n")
            i = j + 1
            continue
        # Identifiers --------------------------------------------------
        m = _IDENT_RE.match(source, i)
        if m:
            add(IDENT, m.group())
            i = m.end()
            continue
        # Numbers ------------------------------------------------------
        if c.isdigit():
            m = _NUMBER_RE.match(source, i)
            add(NUMBER, m.group())
            i = m.end()
            continue
        # Punctuation --------------------------------------------------
        for p in _PUNCTS:
            if source.startswith(p, i):
                add(PUNCT, p)
                i += len(p)
                break
        else:
            add(PUNCT, c)
            i += 1
    return tokens, comments
