#!/usr/bin/env python3
"""Record or check the simulator throughput baseline.

Measures two datapoints through ``examples/mmr_sim``:

* single run — the Figure 4 configuration (8x8 router, 256 VCs/port,
  biased scheduler with 8 candidates, 70% offered CBR load), best of
  ``--repeat`` runs, via ``--profile-json``;
* sweep — the Figure 4 load grid (7 points) executed serially and
  with ``--jobs=N`` worker threads, recording wall time and speedup;
* sharded — one network run through ``bench/scaling`` at
  ``--shards=1`` and ``--shards=N``, recording cycles/s and the
  intra-run speedup of the shard-parallel network core.

Thread-level speedups (sweep, sharded) are *unmeasurable* on a
single-core host — the workers time-slice one core and the ratio is
noise, not parallelism.  When ``host.cores == 1`` the script warns
loudly and annotates both datapoints with ``"unmeasurable": true`` so
nobody reads a 0.96x as a regression.

Each invocation *appends* one entry (with host metadata: CPU model,
core count, compiler, git SHA) to the history kept in
``results/BENCH_throughput.json``, so the committed file documents the
performance trajectory instead of a single point:

    scripts/perf_baseline.py --build build                # record
    scripts/perf_baseline.py --build build --check        # compare

``--check`` compares a fresh single-run measurement against the last
recorded entry (legacy flat-dict baselines are also understood) and
exits non-zero when cycles/sec regresses by more than ``--tolerance``
(default 20%, generous because CI machines vary).  Wall-clock numbers
are inherently machine-dependent: record new entries on an otherwise
idle machine.
"""

import argparse
import datetime
import json
import os
import pathlib
import subprocess
import sys
import time

FIG4_ARGS = [
    "--mode=router",
    "--ports=8",
    "--vcs=256",
    "--sched=biased",
    "--candidates=8",
    "--load=0.70",
    "--warmup=20000",
    "--cycles=100000",
    "--seed=42",
]

SWEEP_LOADS = "0.10,0.30,0.50,0.70,0.80,0.90,0.95"

CONFIG_NOTE = ("fig4: 8x8 router, 256 VCs/port, biased 8C, "
               "70% CBR load, 100k measured cycles; sweep = same "
               "config over the 7-point fig4 load grid")


def run_single(sim: pathlib.Path, profile_path: pathlib.Path) -> dict:
    cmd = [str(sim), *FIG4_ARGS, f"--profile-json={profile_path}"]
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL,
                   stderr=subprocess.DEVNULL)
    return json.loads(profile_path.read_text())


def run_sweep(sim: pathlib.Path, jobs: int) -> float:
    """Wall seconds for the fig4 load grid at the given worker count."""
    cmd = [str(sim), "--mode=router", "--ports=8", "--vcs=256",
           "--sched=biased", "--candidates=8", "--warmup=20000",
           "--cycles=100000", "--seed=42",
           f"--load={SWEEP_LOADS}", f"--jobs={jobs}"]
    start = time.monotonic()
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL,
                   stderr=subprocess.DEVNULL)
    return time.monotonic() - start


def run_sharded(scaling: pathlib.Path, shards: int) -> dict:
    """cycles/s of one 256-router MIN run at the given shard count,
    parsed from the scaling bench's ``# begin-json scaling`` block."""
    cmd = [str(scaling), "--routers=256", "--topo-kind=min",
           f"--shards={shards}", "--warmup=200", "--measure=600"]
    out = subprocess.run(cmd, check=True, capture_output=True,
                         text=True)
    lines = out.stdout.splitlines()
    start = lines.index("# begin-json scaling") + 1
    end = lines.index("# end-json", start)
    rows = json.loads("\n".join(lines[start:end]))
    return rows[0]


def cpu_model() -> str:
    try:
        with open("/proc/cpuinfo") as f:
            for line in f:
                if line.startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return "unknown"


def compiler_id(build: pathlib.Path) -> str:
    """The compiler CMake configured the build with, with its version."""
    cxx = "c++"
    cache = build / "CMakeCache.txt"
    try:
        for line in cache.read_text().splitlines():
            if line.startswith("CMAKE_CXX_COMPILER:"):
                cxx = line.split("=", 1)[1].strip()
                break
    except OSError:
        pass
    try:
        out = subprocess.run([cxx, "--version"], check=True,
                             capture_output=True, text=True)
        return out.stdout.splitlines()[0].strip()
    except (OSError, subprocess.CalledProcessError, IndexError):
        return cxx


def git_sha() -> str:
    try:
        out = subprocess.run(["git", "rev-parse", "HEAD"], check=True,
                             capture_output=True, text=True)
        sha = out.stdout.strip()
        dirty = subprocess.run(["git", "status", "--porcelain"],
                               check=True, capture_output=True,
                               text=True)
        return sha + ("-dirty" if dirty.stdout.strip() else "")
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def last_entry(data: dict) -> dict:
    """The newest record, accepting the legacy flat-dict schema."""
    if "entries" in data:
        return data["entries"][-1]
    return data


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build", default="build",
                        help="build directory containing examples/mmr_sim")
    parser.add_argument("-o", "--output",
                        default="results/BENCH_throughput.json",
                        help="history file to append the new entry to")
    parser.add_argument("--repeat", type=int, default=3,
                        help="single-run repetitions (best is recorded)")
    parser.add_argument("--jobs", type=int, default=0,
                        help="sweep worker threads (0 = cpu count)")
    parser.add_argument("--no-sweep", action="store_true",
                        help="skip the sweep datapoint (single run only)")
    parser.add_argument("--check", action="store_true",
                        help="compare against --baseline instead of "
                             "recording")
    parser.add_argument("--baseline",
                        default="results/BENCH_throughput.json",
                        help="reference file for --check")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional cycles/sec regression")
    args = parser.parse_args()

    build = pathlib.Path(args.build)
    sim = build / "examples" / "mmr_sim"
    if not sim.exists():
        sys.exit(f"error: {sim} not found (build the project first)")

    cores = os.cpu_count() or 1
    if cores == 1:
        print("=" * 70, file=sys.stderr)
        print("WARNING: single-core host detected (os.cpu_count() == 1).",
              file=sys.stderr)
        print("Thread-level speedup numbers (sweep --jobs, sharded "
              "--shards) are", file=sys.stderr)
        print("UNMEASURABLE here: workers time-slice one core, so "
              "ratios like 0.96x", file=sys.stderr)
        print("are scheduling noise, not parallel scaling.  They are "
              "recorded with", file=sys.stderr)
        print('"unmeasurable": true; re-record on a multi-core host '
              "for real numbers.", file=sys.stderr)
        print("=" * 70, file=sys.stderr)

    profile_path = pathlib.Path(args.output).with_suffix(".tmp.json")
    best = None
    for i in range(max(1, args.repeat)):
        prof = run_single(sim, profile_path)
        print(f"run {i + 1}/{args.repeat}: "
              f"{prof['cycles_per_sec']:.0f} cycles/s, "
              f"{prof['events_per_sec']:.0f} events/s")
        if best is None or prof["cycles_per_sec"] > best["cycles_per_sec"]:
            best = prof
    profile_path.unlink(missing_ok=True)

    if args.check:
        ref = last_entry(json.loads(
            pathlib.Path(args.baseline).read_text()))
        ref_cps = (ref.get("single") or ref)["cycles_per_sec"]
        floor = ref_cps * (1.0 - args.tolerance)
        print(f"baseline {ref_cps:.0f} cycles/s, "
              f"measured {best['cycles_per_sec']:.0f}, "
              f"floor {floor:.0f}")
        if best["cycles_per_sec"] < floor:
            print("FAIL: simulator throughput regressed beyond "
                  f"{args.tolerance:.0%}", file=sys.stderr)
            return 1
        print("OK: within tolerance")
        return 0

    entry = {
        "date": datetime.date.today().isoformat(),
        "git_sha": git_sha(),
        "host": {
            "cpu": cpu_model(),
            "cores": cores,
            "compiler": compiler_id(build),
        },
        "single": {
            "cycles": best["cycles"],
            "events": best["events"],
            "cycles_per_sec": best["cycles_per_sec"],
            "events_per_sec": best["events_per_sec"],
        },
    }

    if not args.no_sweep:
        jobs = args.jobs if args.jobs > 0 else cores
        serial_s = run_sweep(sim, jobs=1)
        parallel_s = run_sweep(sim, jobs=jobs)
        entry["sweep"] = {
            "points": len(SWEEP_LOADS.split(",")),
            "jobs": jobs,
            "serial_seconds": round(serial_s, 3),
            "parallel_seconds": round(parallel_s, 3),
            "speedup": round(serial_s / parallel_s, 3),
        }
        if cores == 1:
            entry["sweep"]["unmeasurable"] = True
        print(f"sweep: {serial_s:.2f}s serial, {parallel_s:.2f}s "
              f"with {jobs} jobs "
              f"({serial_s / parallel_s:.2f}x"
              f"{', unmeasurable on 1 core' if cores == 1 else ''})")

    scaling = build / "bench" / "scaling"
    if scaling.exists():
        shards = max(2, min(8, cores))
        serial = run_sharded(scaling, shards=1)
        sharded = run_sharded(scaling, shards=shards)
        speedup = (sharded["cycles_per_sec"] /
                   serial["cycles_per_sec"]
                   if serial["cycles_per_sec"] else 0.0)
        entry["sharded"] = {
            "routers": 256,
            "topology": "min",
            "shards": shards,
            "serial_cycles_per_sec": serial["cycles_per_sec"],
            "sharded_cycles_per_sec": sharded["cycles_per_sec"],
            "speedup": round(speedup, 3),
            "digest_match": serial["digest"] == sharded["digest"],
        }
        if cores == 1:
            entry["sharded"]["unmeasurable"] = True
        print(f"sharded: {serial['cycles_per_sec']:.0f} cycles/s "
              f"serial, {sharded['cycles_per_sec']:.0f} at "
              f"--shards={shards} ({speedup:.2f}x"
              f"{', unmeasurable on 1 core' if cores == 1 else ''}), "
              f"digest match: {entry['sharded']['digest_match']}")
    else:
        print(f"note: {scaling} not found; skipping the sharded "
              "datapoint")

    out = pathlib.Path(args.output)
    history = {"config": CONFIG_NOTE, "entries": []}
    if out.exists():
        data = json.loads(out.read_text())
        if "entries" in data:
            history["entries"] = data["entries"]
        elif "cycles_per_sec" in data:
            # Legacy flat record: keep it as the first history entry.
            history["entries"].append({
                "date": "legacy",
                "single": {k: data[k] for k in
                           ("cycles", "events", "cycles_per_sec",
                            "events_per_sec") if k in data},
            })
    history["entries"].append(entry)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(history, indent=2) + "\n")
    print(f"appended entry {len(history['entries'])} to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
