#!/usr/bin/env python3
"""Record or check the simulator throughput baseline.

Runs the Figure 4 configuration (8x8 router, 256 VCs/port, biased
scheduler with 8 candidates, 70% offered CBR load) through
``examples/mmr_sim --profile-json`` several times and writes the best
run's cycles/sec + events/sec to ``BENCH_throughput.json``.  A
committed reference lives in ``results/BENCH_throughput.json`` so a
performance PR can prove itself:

    scripts/perf_baseline.py --build build                # record
    scripts/perf_baseline.py --build build --check \\
        --baseline results/BENCH_throughput.json          # compare

``--check`` exits non-zero when cycles/sec regresses by more than
``--tolerance`` (default 20%, generous because CI machines vary).
Wall-clock numbers are inherently machine-dependent: regenerate the
committed baseline when touching it, on an otherwise idle machine.
"""

import argparse
import json
import pathlib
import subprocess
import sys

FIG4_ARGS = [
    "--mode=router",
    "--ports=8",
    "--vcs=256",
    "--sched=biased",
    "--candidates=8",
    "--load=0.70",
    "--warmup=20000",
    "--cycles=100000",
    "--seed=42",
]


def run_once(sim: pathlib.Path, profile_path: pathlib.Path) -> dict:
    cmd = [str(sim), *FIG4_ARGS, f"--profile-json={profile_path}"]
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL,
                   stderr=subprocess.DEVNULL)
    return json.loads(profile_path.read_text())


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build", default="build",
                        help="build directory containing examples/mmr_sim")
    parser.add_argument("-o", "--output", default="BENCH_throughput.json",
                        help="where to write the recorded baseline")
    parser.add_argument("--repeat", type=int, default=3,
                        help="runs to take (best run is recorded)")
    parser.add_argument("--check", action="store_true",
                        help="compare against --baseline instead of "
                             "overwriting it")
    parser.add_argument("--baseline",
                        default="results/BENCH_throughput.json",
                        help="reference file for --check")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional cycles/sec regression")
    args = parser.parse_args()

    sim = pathlib.Path(args.build) / "examples" / "mmr_sim"
    if not sim.exists():
        sys.exit(f"error: {sim} not found (build the project first)")

    profile_path = pathlib.Path(args.output).with_suffix(".tmp.json")
    best = None
    for i in range(max(1, args.repeat)):
        prof = run_once(sim, profile_path)
        print(f"run {i + 1}/{args.repeat}: "
              f"{prof['cycles_per_sec']:.0f} cycles/s, "
              f"{prof['events_per_sec']:.0f} events/s")
        if best is None or prof["cycles_per_sec"] > best["cycles_per_sec"]:
            best = prof
    profile_path.unlink(missing_ok=True)

    record = {
        "config": "fig4: 8x8 router, 256 VCs/port, biased 8C, "
                  "70% CBR load, 100k measured cycles",
        "args": FIG4_ARGS,
        "cycles": best["cycles"],
        "events": best["events"],
        "cycles_per_sec": best["cycles_per_sec"],
        "events_per_sec": best["events_per_sec"],
    }

    if args.check:
        ref = json.loads(pathlib.Path(args.baseline).read_text())
        floor = ref["cycles_per_sec"] * (1.0 - args.tolerance)
        print(f"baseline {ref['cycles_per_sec']:.0f} cycles/s, "
              f"measured {best['cycles_per_sec']:.0f}, "
              f"floor {floor:.0f}")
        if best["cycles_per_sec"] < floor:
            print("FAIL: simulator throughput regressed beyond "
                  f"{args.tolerance:.0%}", file=sys.stderr)
            return 1
        print("OK: within tolerance")
        return 0

    pathlib.Path(args.output).write_text(
        json.dumps(record, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
