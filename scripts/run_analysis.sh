#!/usr/bin/env bash
#
# One-command local entry point for the correctness-analysis matrix,
# mirroring .github/workflows/ci.yml:
#
#   1. Release build + full ctest (invariant checkers on)
#   2. mmr-lint over src/          (fixture self-test + project rules)
#   3. ASan+UBSan build + full ctest
#   4. clang-tidy over src/        (skipped when not installed)
#   5. clang-format --dry-run      (skipped when not installed)
#
# Every build exports build/compile_commands.json (CMake default in
# this tree); clang-tidy and mmr-lint's libclang backend consume it.
#
# Usage:
#   scripts/run_analysis.sh           # full matrix
#   scripts/run_analysis.sh --quick   # release build + ctest + lint
#   scripts/run_analysis.sh --tsan    # add a ThreadSanitizer pass
#
# Exits non-zero on the first failing stage.

set -u

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"
QUICK=0
TSAN=0

for arg in "$@"; do
    case "$arg" in
        --quick) QUICK=1 ;;
        --tsan) TSAN=1 ;;
        -h|--help)
            sed -n '2,18p' "$0" | sed 's/^# \{0,1\}//'
            exit 0
            ;;
        *)
            echo "unknown option: $arg (try --help)" >&2
            exit 2
            ;;
    esac
done

failures=0

note() { printf '\n==> %s\n' "$*"; }

run_stage() {
    # run_stage <name> <command...>
    local name="$1"
    shift
    note "$name"
    if "$@"; then
        echo "    [ok] $name"
    else
        echo "    [FAIL] $name" >&2
        failures=$((failures + 1))
    fi
}

build_and_test() {
    # build_and_test <build-dir> <extra cmake args...>
    local dir="$1"
    shift
    cmake -B "$ROOT/$dir" -S "$ROOT" "$@" >/dev/null &&
        cmake --build "$ROOT/$dir" -j "$JOBS" &&
        ctest --test-dir "$ROOT/$dir" --output-on-failure -j "$JOBS"
}

# ---------------------------------------------------------------- 1.
run_stage "release build + ctest (invariants on)" \
    build_and_test build -DCMAKE_BUILD_TYPE=RelWithDebInfo

# ---------------------------------------------------------------- 2.
# mmr-lint: project-semantic rules (determinism, hot-path allocation,
# Clocked contracts, Cycle hygiene).  The auto backend upgrades itself
# to libclang via build/compile_commands.json when available and falls
# back to the bundled token backend otherwise.
if command -v python3 >/dev/null 2>&1; then
    run_stage "mmr-lint fixture self-test" \
        python3 "$ROOT/tests/lint/run_fixtures.py"
    run_stage "mmr-lint over src/" \
        python3 "$ROOT/tools/mmr-lint/mmr_lint.py" --root "$ROOT" \
        --compile-commands "$ROOT/build/compile_commands.json" src
else
    note "python3 not installed -- skipping mmr-lint"
fi

if [ "$QUICK" -eq 1 ]; then
    [ "$failures" -eq 0 ] && note "quick pass clean"
    exit "$failures"
fi

# ---------------------------------------------------------------- 3.
run_stage "ASan+UBSan build + ctest" \
    build_and_test build-asan "-DMMR_SANITIZE=address;undefined"

if [ "$TSAN" -eq 1 ]; then
    run_stage "TSan build + ctest" \
        build_and_test build-tsan "-DMMR_SANITIZE=thread"
fi

# ---------------------------------------------------------------- 4.
if command -v clang-tidy >/dev/null 2>&1; then
    note "clang-tidy over src/"
    if find "$ROOT/src" -name '*.cc' -print0 |
        xargs -0 -n 8 -P "$JOBS" clang-tidy -p "$ROOT/build" --quiet; then
        echo "    [ok] clang-tidy"
    else
        echo "    [FAIL] clang-tidy" >&2
        failures=$((failures + 1))
    fi
else
    note "clang-tidy not installed -- skipping"
fi

# ---------------------------------------------------------------- 5.
if command -v clang-format >/dev/null 2>&1; then
    note "clang-format --dry-run"
    if find "$ROOT/src" "$ROOT/tests" "$ROOT/bench" "$ROOT/examples" \
        \( -name '*.cc' -o -name '*.hh' \) -print0 |
        xargs -0 clang-format --dry-run --Werror; then
        echo "    [ok] clang-format"
    else
        echo "    [FAIL] clang-format" >&2
        failures=$((failures + 1))
    fi
else
    note "clang-format not installed -- skipping"
fi

if [ "$failures" -eq 0 ]; then
    note "analysis matrix clean"
else
    note "$failures stage(s) failed"
fi
exit "$failures"
