#!/usr/bin/env python3
"""Bit-exact golden-file regression for bench summary tables.

Runs a bench binary with pinned arguments, extracts the
machine-readable ``# begin-csv`` ... ``# end-csv`` block(s) from its
stdout, and compares them byte-for-byte against a committed golden
file.  The simulator guarantees same-seed determinism (fixed-seed
xoshiro RNG, deterministic number formatting), so any diff is a real
behavior change: either a regression, or an intended change that
must be reviewed and re-recorded with ``--update``.

Usage:
    check_golden.py --bench build/bench/fig4_delay \\
        --golden results/golden/fig4_delay.txt \\
        -- --loads=0.5,0.9 --measure=10000 --warmup=5000 --seed=42

Exit codes: 0 match, 1 mismatch/missing golden, 2 bench failure.
"""

import argparse
import difflib
import os
import pathlib
import subprocess
import sys


def extract_csv_blocks(text: str) -> str:
    """All CSV blocks, markers included, in emission order."""
    out, keep = [], False
    for line in text.splitlines():
        if line.startswith("# begin-csv"):
            keep = True
        if keep:
            out.append(line)
        if line.startswith("# end-csv"):
            keep = False
    if not out:
        sys.exit("no '# begin-csv' blocks found in bench output")
    return "\n".join(out) + "\n"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", required=True,
                        help="bench binary to run")
    parser.add_argument("--golden", required=True,
                        help="committed golden file")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the golden file instead of "
                             "comparing")
    parser.add_argument("bench_args", nargs="*",
                        help="arguments after -- go to the bench")
    args = parser.parse_args()

    env = dict(os.environ, MMR_LOG_LEVEL="warn")
    proc = subprocess.run([args.bench, *args.bench_args],
                          capture_output=True, text=True, env=env)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        print(f"bench exited {proc.returncode}", file=sys.stderr)
        return 2

    actual = extract_csv_blocks(proc.stdout)
    golden_path = pathlib.Path(args.golden)

    if args.update:
        golden_path.parent.mkdir(parents=True, exist_ok=True)
        golden_path.write_text(actual)
        print(f"wrote {golden_path}")
        return 0

    if not golden_path.exists():
        print(f"golden file {golden_path} missing; regenerate with "
              f"--update", file=sys.stderr)
        return 1

    expected = golden_path.read_text()
    if actual == expected:
        print(f"golden match: {golden_path}")
        return 0

    sys.stderr.write(f"golden MISMATCH against {golden_path}:\n")
    diff = difflib.unified_diff(expected.splitlines(True),
                                actual.splitlines(True),
                                fromfile=str(golden_path),
                                tofile="bench output")
    sys.stderr.writelines(diff)
    return 1


if __name__ == "__main__":
    sys.exit(main())
