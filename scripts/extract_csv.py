#!/usr/bin/env python3
"""Extract the machine-readable blocks from bench output.

Every bench binary prints its plotted series twice: between
``# begin-csv <name>`` / ``# end-csv`` markers as CSV, and between
``# begin-json <name>`` / ``# end-json`` markers as a JSON list of row
objects.  This script pulls both kinds of block out of one or more
bench output files (or stdin) and writes each as
``<outdir>/<name>.csv`` or ``<outdir>/<name>.json``, ready for any
plotting tool.  JSON blocks are validated before being written so a
malformed emitter fails loudly here rather than in a plotting script.

Usage:
    ./build/bench/fig4_delay | scripts/extract_csv.py -o plots/
    scripts/extract_csv.py -o plots/ results/*.txt
"""

import argparse
import json
import pathlib
import sys

FORMATS = {
    "csv": ("# begin-csv ", "# end-csv"),
    "json": ("# begin-json ", "# end-json"),
}


def extract(stream, outdir: pathlib.Path) -> list:
    written = []
    fmt, name, rows = None, None, []
    for raw in stream:
        line = raw.rstrip("\n")
        started = False
        for kind, (begin, end) in FORMATS.items():
            if line.startswith(begin):
                if name is not None:
                    sys.exit(f"error: nested block '{line}' inside "
                             f"'{name}'")
                fmt, name, rows = kind, line[len(begin):].strip(), []
                started = True
            elif fmt == kind and line.startswith(end):
                if name is None:
                    sys.exit(f"error: '{end}' without '{begin}'")
                body = "\n".join(rows) + "\n"
                if kind == "json":
                    try:
                        json.loads(body)
                    except json.JSONDecodeError as e:
                        sys.exit(f"error: block '{name}' is not valid "
                                 f"JSON: {e}")
                path = outdir / f"{name}.{kind}"
                path.write_text(body)
                written.append(path)
                fmt, name = None, None
                started = True
        if not started and name is not None:
            rows.append(line)
    if name is not None:
        sys.exit(f"error: unterminated {fmt} block '{name}'")
    return written


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("inputs", nargs="*",
                        help="bench output files (default: stdin)")
    parser.add_argument("-o", "--outdir", default=".",
                        help="directory for the extracted files")
    args = parser.parse_args()

    outdir = pathlib.Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)

    written = []
    if args.inputs:
        for path in args.inputs:
            with open(path) as f:
                written += extract(f, outdir)
    else:
        written += extract(sys.stdin, outdir)

    for path in written:
        print(f"wrote {path}")
    if not written:
        print("no csv/json blocks found", file=sys.stderr)


if __name__ == "__main__":
    main()
