#!/usr/bin/env python3
"""Extract the machine-readable CSV blocks from bench output.

Every bench binary prints its plotted series between
``# begin-csv <name>`` and ``# end-csv`` markers.  This script pulls
those blocks out of one or more bench output files (or stdin) and
writes each as ``<outdir>/<name>.csv``, ready for any plotting tool.

Usage:
    ./build/bench/fig4_delay | scripts/extract_csv.py -o plots/
    scripts/extract_csv.py -o plots/ results/*.txt
"""

import argparse
import pathlib
import sys


def extract(stream, outdir: pathlib.Path) -> list:
    written = []
    name, rows = None, []
    for raw in stream:
        line = raw.rstrip("\n")
        if line.startswith("# begin-csv "):
            name = line[len("# begin-csv "):].strip()
            rows = []
        elif line.startswith("# end-csv"):
            if name is None:
                sys.exit("error: '# end-csv' without '# begin-csv'")
            path = outdir / f"{name}.csv"
            path.write_text("\n".join(rows) + "\n")
            written.append(path)
            name = None
        elif name is not None:
            rows.append(line)
    if name is not None:
        sys.exit(f"error: unterminated csv block '{name}'")
    return written


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("inputs", nargs="*",
                        help="bench output files (default: stdin)")
    parser.add_argument("-o", "--outdir", default=".",
                        help="directory for the .csv files")
    args = parser.parse_args()

    outdir = pathlib.Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)

    written = []
    if args.inputs:
        for path in args.inputs:
            with open(path) as f:
                written += extract(f, outdir)
    else:
        written += extract(sys.stdin, outdir)

    for path in written:
        print(f"wrote {path}")
    if not written:
        print("no csv blocks found", file=sys.stderr)


if __name__ == "__main__":
    main()
