/**
 * @file
 * §4.2/§4.3 extension A3 — VBR bandwidth allocation and scheduling,
 * evaluated with the synthetic MPEG-like GOP model (the paper defers
 * VBR evaluation to future work; the machinery is fully specified in
 * §4 and implemented here).
 *
 * Part 1 — service discipline: CBR/permanent bandwidth first, then
 * VBR excess by user priority.  Measured per-priority delays must be
 * ordered by priority (high priority, low delay) since excess
 * bandwidth is granted priority-first.
 *
 * Part 2 — the concurrency factor: sweeping it trades the number of
 * admissible VBR connections (statistical multiplexing) against the
 * tail delay once bursts collide.
 */

#include <map>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mmr;
    using namespace mmr::bench;
    return guardedMain([&] {
        Cli cli;
        addSweepFlags(cli);
        cli.flag("load", "0.7", "offered (mean-rate) load");
        if (!cli.parse(argc, argv))
            return 0;
        const auto opts = sweepOptions(cli);
        const double load = cli.real("load");

        // ---- Part 1: per-priority service ordering ----------------
        std::printf("Claim A3a: VBR excess bandwidth served in priority "
                    "order (load %.0f%%, peak/mean 3.0)\n", 100.0 * load);
        ExperimentConfig cfg;
        cfg.offeredLoad = load;
        cfg.router.candidates = 8;
        cfg.warmupCycles = opts.warmupCycles;
        cfg.measureCycles = opts.measureCycles;
        cfg.seed = opts.seed;
        cfg.mix.cbrShare = 0.0;
        cfg.mix.vbrShare = 1.0;
        cfg.mix.vbrPriorityLevels = 4;
        cfg.mix.vbrProfile.peakToMean = 3.0;
        // A frame clock fast enough to exercise many GOPs in the
        // measurement window.
        cfg.mix.vbrProfile.framesPerSecond = 500.0;

        SingleRouterExperiment exp(cfg);
        const ExperimentResult res = exp.run();
        std::fprintf(stderr, "  VBR mix done (%u connections)\n",
                     res.connections);

        std::map<int, StreamStat> delay_by_prio;
        std::map<int, StreamStat> jitter_by_prio;
        std::map<int, std::pair<std::uint64_t, std::uint64_t>>
            deadline_by_prio;
        for (ConnId conn : exp.metrics().connections()) {
            const SegmentParams *seg = exp.router().connection(conn);
            const ConnectionRecorder *rec =
                exp.metrics().connection(conn);
            if (seg == nullptr || rec == nullptr ||
                seg->klass != TrafficClass::VBR)
                continue;
            delay_by_prio[seg->priority].merge(rec->delay());
            jitter_by_prio[seg->priority].merge(rec->jitter());
            auto it = exp.deadlineStats().find(conn);
            if (it != exp.deadlineStats().end()) {
                deadline_by_prio[seg->priority].first +=
                    it->second.first;
                deadline_by_prio[seg->priority].second +=
                    it->second.second;
            }
        }

        Table t({"priority", "flits", "delay_cycles", "delay_us",
                 "jitter_cycles", "deadline_miss_pct"});
        const double ns = cfg.router.flitCycleNanos();
        std::vector<double> delays;
        std::vector<double> misses;
        for (const auto &[prio, stat] : delay_by_prio) {
            const auto &[m, tot] = deadline_by_prio[prio];
            const double miss_pct =
                tot ? 100.0 * static_cast<double>(m) /
                          static_cast<double>(tot)
                    : 0.0;
            t.addRow({std::to_string(prio),
                      std::to_string(stat.count()),
                      Table::num(stat.mean()),
                      Table::num(stat.mean() * ns / 1000.0),
                      Table::num(jitter_by_prio[prio].mean()),
                      Table::num(miss_pct, 2)});
            delays.push_back(stat.mean());
            misses.push_back(miss_pct);
        }
        t.print(std::cout);
        t.printCsv(std::cout, "vbr_delay_by_priority");

        int failures = 0;
        // Highest priority (last row) must not be slower than the
        // lowest priority (first row), nor miss more frame deadlines.
        if (delays.size() >= 2 && delays.back() > delays.front())
            ++failures;
        if (misses.size() >= 2 && misses.back() > misses.front() + 1.0)
            ++failures;
        std::printf("shape check (high priority: lower delay and fewer "
                    "deadline misses): %s\n",
                    failures == 0 ? "PASS" : "FAIL");

        // ---- Part 2: concurrency factor sweep ----------------------
        std::printf("\nClaim A3b: concurrency factor — connections "
                    "admitted vs tail delay (demanded load 0.9)\n");
        Table t2({"concurrency", "connections", "achieved_load",
                  "delay_us", "p99_delay_cycles",
                  "deadline_miss_pct"});
        std::vector<unsigned> admitted;
        for (double cf : {1.0, 1.5, 2.0, 3.0, 4.0}) {
            ExperimentConfig c2 = cfg;
            c2.offeredLoad = 0.9;
            c2.router.concurrencyFactor = cf;
            const ExperimentResult r2 = runSingleRouter(c2);
            std::fprintf(stderr, "  concurrency %.1f done\n", cf);
            admitted.push_back(r2.connections);
            t2.addRow({Table::num(cf, 1), std::to_string(r2.connections),
                       Table::num(r2.achievedLoad, 3),
                       Table::num(r2.meanDelayUs),
                       Table::num(r2.p99DelayCycles, 1),
                       Table::num(100.0 * r2.vbr.deadlineMissRate(),
                                  2)});
        }
        t2.print(std::cout);
        t2.printCsv(std::cout, "vbr_concurrency_sweep");

        // Shape: a larger concurrency factor never admits fewer
        // connections (peak register is the binding constraint at
        // peak/mean = 3).
        for (std::size_t i = 1; i < admitted.size(); ++i)
            if (admitted[i] < admitted[i - 1])
                ++failures;
        std::printf("shape check (admissions grow with concurrency "
                    "factor): %s\n", failures == 0 ? "PASS" : "FAIL");
        return failures == 0 ? 0 : 2;
    });
}
