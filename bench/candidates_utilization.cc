/**
 * @file
 * §5.2 claim C1 — "using a larger number of candidates is effective
 * in increasing switch utilization and is not significantly affected
 * by the priority scheme": utilization (and carried load) versus the
 * candidate count for both priority schemes at a high offered load,
 * plus the saturation throughput of each candidate count.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mmr;
    using namespace mmr::bench;
    return guardedMain([&] {
        Cli cli;
        addSweepFlags(cli);
        cli.flag("load", "0.9", "offered load for the candidate sweep");
        if (!cli.parse(argc, argv))
            return 0;
        const auto opts = sweepOptions(cli);
        const double load = cli.real("load");

        std::printf("Claim C1: switch utilization vs candidate count "
                    "(offered load %.0f%%)\n", 100.0 * load);

        const std::vector<unsigned> candidate_counts{1, 2, 3, 4, 6, 8};
        Table t({"candidates", "util_biased", "util_fixed",
                 "delay_us_biased", "delay_us_fixed"});
        std::vector<double> util_biased;
        for (unsigned c : candidate_counts) {
            ExperimentResult r[2];
            const SchedulerKind kinds[2] = {
                SchedulerKind::BiasedPriority,
                SchedulerKind::FixedPriority};
            for (int k = 0; k < 2; ++k) {
                ExperimentConfig cfg;
                cfg.router.scheduler = kinds[k];
                cfg.router.candidates = c;
                cfg.offeredLoad = load;
                cfg.warmupCycles = opts.warmupCycles;
                cfg.measureCycles = opts.measureCycles;
                cfg.seed = opts.seed;
                r[k] = runSingleRouter(cfg);
                std::fprintf(stderr, "  %uC %s done\n", c,
                             k == 0 ? "biased" : "fixed");
            }
            util_biased.push_back(r[0].utilization);
            t.addRow({std::to_string(c), Table::num(r[0].utilization, 3),
                      Table::num(r[1].utilization, 3),
                      Table::num(r[0].meanDelayUs),
                      Table::num(r[1].meanDelayUs)});
        }
        t.print(std::cout);
        t.printCsv(std::cout, "candidates_utilization");

        // Shape: utilization is non-decreasing in the candidate count
        // (up to noise), and the two priority schemes track closely.
        int failures = 0;
        for (std::size_t i = 1; i < util_biased.size(); ++i)
            if (util_biased[i] + 0.02 < util_biased[i - 1])
                ++failures;
        std::printf("shape check (utilization grows with candidates): "
                    "%s\n", failures == 0 ? "PASS" : "FAIL");
        return failures == 0 ? 0 : 2;
    });
}
