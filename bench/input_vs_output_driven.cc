/**
 * @file
 * §4.4 ablation — input-driven vs output-driven switch scheduling.
 * The paper: "For fully de-multiplexed switches output-driven schemes
 * provide superior performance.  However, for a large number of
 * virtual channels, a fully de-multiplexed crossbar is infeasible.
 * For multiplexed crossbars the choice between input-driven and
 * output-driven scheduling is not clear."  The MMR chose
 * input-driven; this bench puts numbers on that choice for the
 * multiplexed organization: both schemes see the same per-input
 * candidate sets (that is what a multiplexed crossbar's link
 * schedulers expose), arbitrated from the input side (tiered maximum
 * matching) or from the output side (grant/accept iterations).
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mmr;
    using namespace mmr::bench;
    return guardedMain([&] {
        Cli cli;
        addSweepFlags(cli);
        if (!cli.parse(argc, argv))
            return 0;
        const auto loads = loadsFromCli(cli);
        const auto opts = sweepOptions(cli);

        const std::vector<Series> series{
            {"input_4c", SchedulerKind::BiasedPriority, 4},
            {"output_4c", SchedulerKind::OutputDriven, 4},
            {"input_8c", SchedulerKind::BiasedPriority, 8},
            {"output_8c", SchedulerKind::OutputDriven, 8},
        };

        std::printf("Input-driven vs output-driven scheduling "
                    "(multiplexed crossbar, biased priorities)\n");
        std::vector<std::vector<ExperimentResult>> results;
        for (const Series &s : series)
            results.push_back(runSweep(s, loads, opts));

        std::printf("\nDelay (microseconds):\n");
        printFigure("io_driven_delay_us", series, loads, results,
                    [](const ExperimentResult &r) {
                        return r.meanDelayUs;
                    });
        std::printf("\nJitter (router cycles):\n");
        printFigure("io_driven_jitter", series, loads, results,
                    [](const ExperimentResult &r) {
                        return r.meanJitterCycles;
                    });

        // Both schemes must carry the offered load below saturation;
        // neither should be an order of magnitude off the other —
        // quantifying the paper's "not clear" verdict.
        int failures = 0;
        for (std::size_t li = 0; li < loads.size(); ++li) {
            if (loads[li] > 0.9)
                continue;
            for (int s = 0; s < 4; ++s)
                if (results[s][li].utilization + 0.03 <
                    results[s][li].achievedLoad)
                    ++failures;
        }
        std::printf("shape check (both schemes carry the load below "
                    "saturation): %s\n",
                    failures == 0 ? "PASS" : "FAIL");
        return failures == 0 ? 0 : 2;
    });
}
