/**
 * @file
 * Micro-benchmarks (google-benchmark) for the mechanisms the paper
 * requires to be fast in hardware — and which bound this simulator's
 * cycle cost in software: status bit-vector algebra (§4.1), candidate
 * collection by the link scheduler, switch-matching computation
 * (§4.4), and the RNG.
 */

#include <benchmark/benchmark.h>

#include "base/bitvector.hh"
#include "base/rng.hh"
#include "router/link_sched.hh"
#include "router/switch_sched.hh"

namespace
{

using namespace mmr;

void
BM_BitVectorAnd(benchmark::State &state)
{
    const auto bits = static_cast<std::size_t>(state.range(0));
    BitVector a(bits), b(bits);
    Rng rng(1);
    for (std::size_t i = 0; i < bits; ++i) {
        a.assign(i, rng.chance(0.3));
        b.assign(i, rng.chance(0.3));
    }
    for (auto _ : state) {
        BitVector c = a & b;
        benchmark::DoNotOptimize(c.count());
    }
}
BENCHMARK(BM_BitVectorAnd)->Arg(256)->Arg(2048);

void
BM_BitVectorIterateSetBits(benchmark::State &state)
{
    const auto bits = static_cast<std::size_t>(state.range(0));
    BitVector v(bits);
    Rng rng(2);
    for (std::size_t i = 0; i < bits; ++i)
        v.assign(i, rng.chance(0.1));
    for (auto _ : state) {
        std::size_t sum = 0;
        for (std::size_t i = v.findFirst(); i < v.size();
             i = v.findNext(i))
            sum += i;
        benchmark::DoNotOptimize(sum);
    }
}
BENCHMARK(BM_BitVectorIterateSetBits)->Arg(256)->Arg(2048);

void
BM_LinkSchedulerCollect(benchmark::State &state)
{
    const auto ready = static_cast<unsigned>(state.range(0));
    VcMemory mem(256, 8);
    CreditManager credits(8, 256, 4);
    credits.setInfinite(true);
    LinkScheduler sched(0, &mem, 8, PriorityPolicy::Biased, 512, false);
    Rng rng(3);
    for (unsigned i = 0; i < ready; ++i) {
        const VcId v = static_cast<VcId>(i);
        mem.vc(v).bindCbr(i, 4, 50.0 + i);
        mem.vc(v).setMapping(static_cast<PortId>(i % 8), v);
        Flit f;
        mem.deposit(v, f);
    }
    std::vector<Candidate> out;
    for (auto _ : state) {
        out.clear();
        sched.collectCandidates(100, 8, credits, rng, out);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_LinkSchedulerCollect)->Arg(8)->Arg(64)->Arg(256);

void
BM_SwitchMatching(benchmark::State &state)
{
    const unsigned ports = 8;
    GreedyPriorityScheduler sched(ports);
    PortMasks masks(ports);
    Rng rng(4);
    std::vector<std::vector<Candidate>> per(ports);
    for (PortId in = 0; in < ports; ++in) {
        for (unsigned k = 0; k < static_cast<unsigned>(state.range(0));
             ++k) {
            Candidate c;
            c.in = in;
            c.vc = static_cast<VcId>(k);
            c.out = static_cast<PortId>(rng.below(ports));
            c.outVc = 0;
            c.conn = in * 100 + k;
            c.tier = 3;
            c.prio = rng.uniform();
            c.tie = rng.uniform();
            per[in].push_back(c);
        }
    }
    for (auto _ : state) {
        Matching m = sched.schedule(per, masks, rng);
        benchmark::DoNotOptimize(m.data());
    }
}
BENCHMARK(BM_SwitchMatching)->Arg(1)->Arg(4)->Arg(8);

void
BM_AutonetMatching(benchmark::State &state)
{
    const unsigned ports = 8;
    AutonetScheduler sched(ports, 3);
    PortMasks masks(ports);
    Rng rng(5);
    std::vector<std::vector<Candidate>> per(ports);
    for (PortId in = 0; in < ports; ++in) {
        for (unsigned k = 0; k < 8; ++k) {
            Candidate c;
            c.in = in;
            c.vc = static_cast<VcId>(k);
            c.out = static_cast<PortId>(rng.below(ports));
            c.tier = 3;
            c.prio = rng.uniform();
            per[in].push_back(c);
        }
    }
    for (auto _ : state) {
        Matching m = sched.schedule(per, masks, rng);
        benchmark::DoNotOptimize(m.data());
    }
}
BENCHMARK(BM_AutonetMatching);

void
BM_RngNext(benchmark::State &state)
{
    Rng rng(6);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

} // namespace

BENCHMARK_MAIN();
