/**
 * @file
 * §3.5/§4.2 extension A6 — connection establishment at network scale:
 * EPB (exhaustive profitable backtracking) against the greedy
 * single-path baseline on an irregular cluster/LAN topology.
 * Reports acceptance ratio, probe work and estimated setup latency as
 * connection demand grows, then verifies data flows end-to-end on the
 * established connections.
 */

#include <memory>

#include "bench_common.hh"
#include "network/interface.hh"
#include "network/network.hh"
#include "sim/kernel.hh"

namespace
{

using namespace mmr;

struct LoadPoint
{
    unsigned offered = 0;
    unsigned accepted = 0;
    double acceptance = 0.0;
    double meanForward = 0.0;
    double meanBacktrack = 0.0;
    double meanSetupCycles = 0.0;
};

std::vector<LoadPoint>
demandSweep(SetupPolicy policy, unsigned total_demand,
            unsigned batch, std::uint64_t seed)
{
    Rng rng(seed);
    const Topology topo = Topology::irregular(16, 8, 4, rng);
    NetworkConfig cfg;
    cfg.router.vcsPerPort = 64;
    cfg.seed = seed;
    Network net(topo, cfg);

    std::vector<LoadPoint> points;
    LoadPoint cur;
    double fwd = 0, bwd = 0, setup = 0;
    for (unsigned i = 0; i < total_demand; ++i) {
        const NodeId src = static_cast<NodeId>(rng.below(16));
        NodeId dst;
        do {
            dst = static_cast<NodeId>(rng.below(16));
        } while (dst == src);
        const double rate = rng.pick(paperRateLadder());
        const auto o = net.openCbr(src, dst, rate, policy);
        ++cur.offered;
        if (o.accepted) {
            ++cur.accepted;
            fwd += o.forwardSteps;
            bwd += o.backtrackSteps;
            setup += o.setupLatencyCycles;
        }
        if (cur.offered % batch == 0) {
            cur.acceptance =
                static_cast<double>(cur.accepted) / cur.offered;
            cur.meanForward = cur.accepted ? fwd / cur.accepted : 0.0;
            cur.meanBacktrack = cur.accepted ? bwd / cur.accepted : 0.0;
            cur.meanSetupCycles =
                cur.accepted ? setup / cur.accepted : 0.0;
            points.push_back(cur);
        }
    }
    return points;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mmr;
    using namespace mmr::bench;
    return guardedMain([&] {
        Cli cli;
        cli.flag("demand", "600", "total connection requests");
        cli.flag("batch", "100", "report granularity");
        cli.flag("seed", "11", "topology/workload seed");
        if (!cli.parse(argc, argv))
            return 0;
        const auto demand = static_cast<unsigned>(cli.integer("demand"));
        const auto batch = static_cast<unsigned>(cli.integer("batch"));
        const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));

        std::printf("Claim A6: EPB vs greedy connection establishment, "
                    "16-node irregular LAN\n");

        const auto epb = demandSweep(SetupPolicy::Epb, demand, batch,
                                     seed);
        const auto greedy = demandSweep(SetupPolicy::Greedy, demand,
                                        batch, seed);

        Table t({"offered_conns", "accept_epb", "accept_greedy",
                 "probe_fwd_epb", "probe_back_epb",
                 "setup_cycles_epb"});
        for (std::size_t i = 0; i < epb.size(); ++i) {
            t.addRow({std::to_string(epb[i].offered),
                      Table::num(epb[i].acceptance, 3),
                      Table::num(greedy[i].acceptance, 3),
                      Table::num(epb[i].meanForward, 2),
                      Table::num(epb[i].meanBacktrack, 2),
                      Table::num(epb[i].meanSetupCycles, 1)});
        }
        t.print(std::cout);
        t.printCsv(std::cout, "epb_vs_greedy");

        int failures = 0;
        // EPB never accepts fewer connections than greedy under the
        // same demand sequence.
        for (std::size_t i = 0; i < epb.size(); ++i)
            if (epb[i].accepted + 1 < greedy[i].accepted)
                ++failures;
        // And under heavy demand, backtracking pays off visibly.
        if (epb.back().accepted < greedy.back().accepted)
            ++failures;
        std::printf("shape check (EPB acceptance >= greedy): %s\n",
                    failures == 0 ? "PASS" : "FAIL");

        // ---- end-to-end data over the established network ----------
        std::printf("\nData transmission across an irregular LAN with "
                    "background best-effort:\n");
        Rng rng(seed);
        const Topology topo = Topology::irregular(16, 8, 4, rng);
        NetworkConfig ncfg;
        ncfg.router.vcsPerPort = 64;
        ncfg.seed = seed;
        Network net(topo, ncfg);
        Kernel kernel;
        kernel.add(&net);

        std::vector<std::unique_ptr<NetworkInterface>> hosts;
        for (NodeId n = 0; n < 16; ++n) {
            hosts.push_back(
                std::make_unique<NetworkInterface>(net, n, seed + n));
            const NodeId dst = static_cast<NodeId>((n + 5) % 16);
            hosts.back()->openCbrStream(dst, 10 * kMbps);
            hosts.back()->addBestEffortFlow((n + 3) % 16, 2 * kMbps);
        }
        net.endToEnd().startMeasurement(2000);
        for (Cycle t2 = 0; t2 < 40000; ++t2) {
            for (auto &h : hosts)
                h->tick(kernel.now());
            kernel.step();
        }
        std::printf("  delivered stream flits: %llu, datagrams: "
                    "%llu/%llu, mean e2e delay %.1f cycles\n",
                    static_cast<unsigned long long>(
                        net.flitsDelivered() - net.datagramsDelivered()),
                    static_cast<unsigned long long>(
                        net.datagramsDelivered()),
                    static_cast<unsigned long long>(net.datagramsSent()),
                    net.endToEnd().meanDelayCycles());
        if (net.flitsDelivered() == 0 || net.datagramDrops() != 0)
            ++failures;
        std::printf("network data check: %s\n",
                    failures == 0 ? "PASS" : "FAIL");
        return failures == 0 ? 0 : 2;
    });
}
