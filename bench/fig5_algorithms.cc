/**
 * @file
 * Figure 5 reproduction — "Delay and Jitter vs. Offered Load: Fixed
 * and Biased Priorities, Autonet, Perfect Switch": the four-way
 * algorithm comparison at 8 candidates per input port.
 *
 * Expected shape (§5.2): the biased scheme closely tracks the perfect
 * switch; fixed priorities are markedly worse; the Autonet (random
 * iterative matching, Anderson et al.) scheduler delivers reasonable
 * matchings but without QoS awareness its delay sits well above the
 * biased scheme.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mmr;
    using namespace mmr::bench;
    return guardedMain([&] {
        Cli cli;
        addSweepFlags(cli);
        if (!cli.parse(argc, argv))
            return 0;
        const auto loads = loadsFromCli(cli);
        const auto opts = sweepOptions(cli);

        const std::vector<Series> series{
            {"biased", SchedulerKind::BiasedPriority, 8},
            {"fixed", SchedulerKind::FixedPriority, 8},
            {"autonet", SchedulerKind::Autonet, 8},
            {"perfect", SchedulerKind::Perfect, 8},
        };

        std::printf("Figure 5: biased / fixed / Autonet(DEC) / perfect "
                    "switch at 8 candidates\n");
        std::vector<std::vector<ExperimentResult>> results;
        for (const Series &s : series)
            results.push_back(runSweep(s, loads, opts));

        std::printf("\nDelay (microseconds):\n");
        printFigure("fig5_delay_us", series, loads, results,
                    [](const ExperimentResult &r) {
                        return r.meanDelayUs;
                    });
        std::printf("\nJitter (router cycles):\n");
        printFigure("fig5_jitter_cycles", series, loads, results,
                    [](const ExperimentResult &r) {
                        return r.meanJitterCycles;
                    });
        std::printf("\nSwitch utilization:\n");
        printFigure("fig5_utilization", series, loads, results,
                    [](const ExperimentResult &r) {
                        return r.utilization;
                    },
                    3);

        // ---- shape checks -----------------------------------------
        int failures = 0;
        auto check = [&](bool ok, const std::string &what) {
            std::printf("shape check: %-58s %s\n", what.c_str(),
                        ok ? "PASS" : "FAIL");
            if (!ok)
                ++failures;
        };
        for (std::size_t li = 0; li < loads.size(); ++li) {
            const double b = results[0][li].meanDelayUs;
            const double f = results[1][li].meanDelayUs;
            const double a = results[2][li].meanDelayUs;
            const double p = results[3][li].meanDelayUs;
            if (loads[li] >= 0.5) {
                if (!(b <= f))
                    ++failures;
                if (!(b <= a))
                    ++failures;
            }
            if (!(p <= b + 1e-9))
                ++failures;
        }
        check(failures == 0,
              "perfect <= biased <= {fixed, autonet} on delay");

        // Biased tracks the perfect switch: within a small constant
        // factor at high load (paper: nearly coincident curves).
        const std::size_t last = loads.size() - 1;
        const double ratio = results[0][last].meanDelayUs /
                             std::max(1e-9, results[3][last].meanDelayUs);
        check(ratio < 3.0, "biased within 3x of perfect at top load");

        std::printf("figure 5 checks: %s\n",
                    failures == 0 ? "ALL PASS" : "FAILURES PRESENT");
        return failures == 0 ? 0 : 2;
    });
}
