/**
 * @file
 * Fault-injection & recovery bench.
 *
 * Sweeps the link-failure rate over a network of MMR routers and
 * reports, with the RecoveryManager's retry+reroute machinery on and
 * off: end-to-end stream acceptance (streams alive and serviced at
 * the end over streams requested), CBR delay/jitter, and the recovery
 * counters.  Shape checks assert the recovery story the subsystem
 * exists to tell:
 *
 *  - a fault-free run accepts and keeps every stream;
 *  - under a low (1%-per-10k-cycles) link-failure rate, recovery
 *    keeps acceptance within 5 points of fault-free;
 *  - admitted CBR connections still meet QoS after re-routing (worst
 *    per-connection mean delay stays within a small factor of the
 *    fault-free worst);
 *  - recovery beats no-recovery at the highest failure rate.
 *
 * A second phase is the randomized property sweep: N seeds of random
 * fault schedules (link churn + probe drops + flit corruption) on
 * mixed topologies with the full invariant battery force-enabled —
 * any violated invariant panics the bench — plus a same-seed
 * digest-reproducibility audit.
 */

#include <cmath>
#include <vector>

#include "bench_common.hh"
#include "harness/network_experiment.hh"
#include "sim/invariant.hh"

namespace
{

unsigned gShards = 1; ///< --shards, applied to every run in the bench

mmr::NetworkExperimentConfig
sweepConfig(const std::string &topo, std::uint64_t seed, mmr::Cycle warmup,
            mmr::Cycle measure, mmr::Cycle drain, double fail_per_10k,
            bool recovery_on, mmr::Cycle cbr_budget = 0)
{
    using namespace mmr;
    NetworkExperimentConfig c;
    c.net.shards = gShards;
    c.topologySpec = topo;
    c.seed = seed;
    c.cbrDelayBudgetCycles = cbr_budget;
    c.net.router.vcsPerPort = 32;
    c.net.router.candidates = 8;
    c.cbrStreamsPerHost = 1;
    c.cbrRateBps = 10 * kMbps;
    c.beFlowsPerHost = 1;
    c.beRateBps = 2 * kMbps;
    c.warmupCycles = warmup;
    c.measureCycles = measure;
    c.drainCycles = drain;
    c.faults.linkFailPer10k = fail_per_10k;
    c.faults.meanRepairCycles = 6000;
    c.recovery.enabled = recovery_on;
    return c;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mmr;
    using namespace mmr::bench;
    return guardedMain([&] {
        Cli cli;
        cli.flag("seed", "42", "experiment seed");
        cli.flag("topo", "mesh:4x4", "topology spec");
        cli.flag("warmup", "5000", "warm-up flit cycles");
        cli.flag("measure", "20000", "measured flit cycles");
        cli.flag("drain", "3000", "post-measurement drain cycles");
        cli.flag("rates", "0,0.01,0.05,0.2",
                 "expected link failures per link per 10k cycles");
        cli.flag("prop-seeds", "50",
                 "randomized fault-schedule seeds for the invariant "
                 "sweep (0 disables)");
        cli.flag("cbr-budget", "200",
                 "CBR end-to-end delay budget in flit cycles for the "
                 "QoS deadline columns (0 = off)");
        cli.flag("faults", "",
                 "single-scenario mode: fault model spec, e.g. "
                 "fail=0.05,repair=6000,drop=0.02,corrupt=1e-4");
        cli.flag("fault-events", "",
                 "single-scenario mode: explicit event list, e.g. "
                 "down@500:2-3;up@900:2-3");
        cli.flag("shards", "1",
                 "intra-run shard count for the parallel network core "
                 "(results are bit-identical across values)");
        if (!cli.parse(argc, argv))
            return 0;
        gShards = static_cast<unsigned>(cli.integer("shards"));
        const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
        const std::string topo = cli.str("topo");
        const auto warmup = static_cast<Cycle>(cli.integer("warmup"));
        const auto measure = static_cast<Cycle>(cli.integer("measure"));
        const auto drain = static_cast<Cycle>(cli.integer("drain"));
        const auto prop_seeds =
            static_cast<unsigned>(cli.integer("prop-seeds"));
        const auto cbr_budget =
            static_cast<Cycle>(cli.integer("cbr-budget"));
        std::vector<double> rates;
        for (const auto &p : cli.list("rates"))
            rates.push_back(std::stod(p));

        // ---- single-scenario mode ---------------------------------
        // Reproduce one fault scenario — either a stochastic model
        // spec (seed-derived schedule) or an explicit event list —
        // and dump the resolved plan as JSON plus the outcome.
        const std::string faults_spec = cli.str("faults");
        const std::string fault_events = cli.str("fault-events");
        if (!faults_spec.empty() || !fault_events.empty()) {
            NetworkExperimentConfig c = sweepConfig(
                topo, seed, warmup, measure, drain, 0.0, true);
            if (!faults_spec.empty())
                c.faults = parseFaultModel(faults_spec);
            c.faultEvents = fault_events;
            if (c.faults.horizon == 0)
                c.faults.horizon = warmup + measure;
            {
                FaultPlan plan =
                    fault_events.empty()
                        ? FaultPlan::random(
                              topologyFromSpec(topo, seed), c.faults,
                              seed ^ 0xfa17a11edfa57ULL)
                        : FaultPlan::fromEvents(
                              fault_events,
                              topologyFromSpec(topo, seed));
                std::printf("# begin-json fault_plan\n");
                plan.printJson(std::cout);
                std::printf("\n# end-json\n");
            }
            const auto r = runNetworkExperiment(c);
            std::printf("scenario: %u/%u streams alive, %llu conns "
                        "failed, %llu recovered, %llu abandoned, "
                        "%llu link downs / %llu ups, digest %016llx\n",
                        r.streamsAlive, r.streamsRequested,
                        static_cast<unsigned long long>(
                            r.connectionsFailed),
                        static_cast<unsigned long long>(
                            r.connectionsRecovered),
                        static_cast<unsigned long long>(
                            r.connectionsAbandoned),
                        static_cast<unsigned long long>(r.linkDowns),
                        static_cast<unsigned long long>(r.linkUps),
                        static_cast<unsigned long long>(
                            networkResultDigest(r)));
            return 0;
        }

        std::printf("Fault recovery on %s: acceptance and CBR QoS vs "
                    "link-failure rate\n",
                    topo.c_str());

        Table t({"fail_per_10k", "acceptance", "acc_no_recovery",
                 "conns_failed", "recovered", "abandoned", "retries",
                 "mean_delay", "jitter", "p99_delay",
                 "worst_conn_delay", "qos_viol_rate",
                 "qos_worst_excess", "cbr_p999"});
        std::vector<NetworkExperimentResult> sweep;
        for (double rate : rates) {
            const auto r = runNetworkExperiment(
                sweepConfig(topo, seed, warmup, measure, drain, rate,
                            true, cbr_budget));
            const auto rn =
                rate > 0.0
                    ? runNetworkExperiment(sweepConfig(
                          topo, seed, warmup, measure, drain, rate,
                          false))
                    : r;
            const double acc =
                static_cast<double>(r.streamsAlive) /
                static_cast<double>(r.streamsRequested);
            const double acc_n =
                static_cast<double>(rn.streamsAlive) /
                static_cast<double>(rn.streamsRequested);
            t.addRow({Table::num(rate, 3), Table::num(acc, 4),
                      Table::num(acc_n, 4),
                      std::to_string(r.connectionsFailed),
                      std::to_string(r.connectionsRecovered),
                      std::to_string(r.connectionsAbandoned),
                      std::to_string(r.recoveryRetries),
                      Table::num(r.meanDelayCycles, 4),
                      Table::num(r.meanJitterCycles, 4),
                      Table::num(r.p99DelayCycles, 4),
                      Table::num(r.maxAliveConnMeanDelay, 4),
                      Table::num(r.qosViolationRate, 4),
                      Table::num(r.worstQosExcessCycles, 0),
                      Table::num(r.cbrLatency.p999, 0)});
            sweep.push_back(r);
        }
        t.print(std::cout);
        t.printCsv(std::cout, "fault_recovery");
        t.printJson(std::cout, "fault_recovery");

        // ---- shape checks -----------------------------------------
        int failures = 0;
        auto check = [&](bool ok, const char *what) {
            std::printf("shape check: %-58s %s\n", what,
                        ok ? "PASS" : "FAIL");
            if (!ok)
                ++failures;
        };

        auto acceptance = [](const NetworkExperimentResult &r) {
            return static_cast<double>(r.streamsAlive) /
                   static_cast<double>(r.streamsRequested);
        };
        const NetworkExperimentResult *fault_free = nullptr;
        const NetworkExperimentResult *low_rate = nullptr;
        const NetworkExperimentResult *high_rate = nullptr;
        for (std::size_t i = 0; i < rates.size(); ++i) {
            if (rates[i] == 0.0 && !fault_free)
                fault_free = &sweep[i];
            if (rates[i] > 0.0 && rates[i] <= 0.011 && !low_rate)
                low_rate = &sweep[i];
            if (rates[i] > 0.0)
                high_rate = &sweep[i];
        }

        if (fault_free) {
            check(acceptance(*fault_free) == 1.0 &&
                      fault_free->connectionsFailed == 0,
                  "fault-free run accepts and keeps every stream");
        }
        if (fault_free && low_rate) {
            check(acceptance(*low_rate) >=
                      acceptance(*fault_free) - 0.05,
                  "1% failure rate: acceptance within 5 points of "
                  "fault-free");
            const double bound =
                std::max(4.0 * fault_free->maxAliveConnMeanDelay,
                         fault_free->maxAliveConnMeanDelay + 25.0);
            check(low_rate->maxAliveConnMeanDelay <= bound,
                  "1% failure rate: admitted CBR streams keep QoS "
                  "after recovery");
        }
        if (high_rate) {
            check(high_rate->connectionsFailed == 0 ||
                      high_rate->connectionsRecovered > 0,
                  "failures at the top rate are actually recovered");
            // Recompute the no-recovery contrast for the top rate.
            const auto rn = runNetworkExperiment(
                sweepConfig(topo, seed, warmup, measure, drain,
                            rates.back(), false));
            check(acceptance(*high_rate) >= acceptance(rn),
                  "recovery never loses to no-recovery on acceptance");
        }

        // ---- randomized fault-schedule property sweep -------------
        if (prop_seeds > 0) {
            std::printf("\nrandomized fault sweep: %u seeds, "
                        "invariants force-enabled\n",
                        prop_seeds);
            invariant::setEnabled(true);
            const char *topos[] = {"mesh:3x3", "ring:8",
                                   "irregular:10:4:4"};
            std::uint64_t digests = 0;
            unsigned digest_checks = 0;
            bool digests_ok = true;
            for (unsigned s = 0; s < prop_seeds; ++s) {
                NetworkExperimentConfig c = sweepConfig(
                    topos[s % 3], seed + 7919 * (s + 1), 1000, 4000,
                    1500, 1.0, true);
                c.faults.meanRepairCycles = 2000;
                c.faults.probeDropRate = 0.02;
                c.faults.corruptRate = 2e-4;
                c.invariantPeriod = 4;
                const auto r = runNetworkExperiment(c);
                if (r.invariantChecks == 0)
                    mmr_fatal("invariant sweep ran zero checks");
                digests ^= networkResultDigest(r);
                if (s % 10 == 0) {
                    ++digest_checks;
                    const auto again = runNetworkExperiment(c);
                    if (networkResultDigest(again) !=
                        networkResultDigest(r))
                        digests_ok = false;
                }
            }
            invariant::clearOverride();
            std::printf("  combined digest %016llx "
                        "(%u reproducibility re-runs)\n",
                        static_cast<unsigned long long>(digests),
                        digest_checks);
            check(true, "no invariant fired across randomized fault "
                        "schedules");
            check(digests_ok,
                  "same-seed fault runs reproduce bit-identical "
                  "digests");
        }

        std::printf("fault recovery checks: %s\n",
                    failures == 0 ? "ALL PASS" : "FAIL");
        return failures == 0 ? 0 : 2;
    });
}
