/**
 * @file
 * §4.1 ablation A2 — the round-length factor K: "a greater value of K
 * provides a higher flexibility for bandwidth allocation.  However,
 * it may increase jitter on a connection since rounds take longer to
 * complete.  Therefore, the selected value for K is a trade-off
 * between flexibility and jitter."
 *
 * For K in {1, 2, 4, 8} this bench reports (a) the bandwidth
 * over-allocation caused by cycles/round quantization across the
 * paper's rate ladder and (b) measured jitter/delay at a fixed load.
 */

#include "bench_common.hh"
#include "traffic/rates.hh"

int
main(int argc, char **argv)
{
    using namespace mmr;
    using namespace mmr::bench;
    return guardedMain([&] {
        Cli cli;
        addSweepFlags(cli);
        cli.flag("load", "0.8", "offered load for the jitter column");
        if (!cli.parse(argc, argv))
            return 0;
        const auto opts = sweepOptions(cli);
        const double load = cli.real("load");

        std::printf("Claim A2: round length K — allocation granularity "
                    "vs jitter (load %.0f%%)\n", 100.0 * load);

        const double link = 1.24 * kGbps;
        const unsigned vcs = 256;

        Table t({"K", "round_cycles", "mean_overalloc_pct",
                 "worst_overalloc_pct", "jitter_cycles", "delay_us",
                 "p99_delay_cycles"});
        std::vector<double> overalloc_by_k;
        std::vector<double> jitter_by_k;
        for (unsigned k : {1u, 2u, 4u, 8u}) {
            const unsigned round = k * vcs;
            // Quantization error over the rate ladder.
            double mean_err = 0.0, worst_err = 0.0;
            for (double rate : paperRateLadder()) {
                const double granted = grantedRate(
                    cyclesPerRound(rate, link, round), link, round);
                const double err = (granted - rate) / rate * 100.0;
                mean_err += err;
                worst_err = std::max(worst_err, err);
            }
            mean_err /= static_cast<double>(paperRateLadder().size());

            ExperimentConfig cfg;
            cfg.router.roundFactorK = k;
            cfg.router.candidates = 8;
            cfg.offeredLoad = load;
            cfg.warmupCycles = opts.warmupCycles;
            cfg.measureCycles = opts.measureCycles;
            cfg.seed = opts.seed;
            const ExperimentResult r = runSingleRouter(cfg);
            std::fprintf(stderr, "  K=%u done\n", k);

            overalloc_by_k.push_back(mean_err);
            jitter_by_k.push_back(r.meanJitterCycles);
            t.addRow({std::to_string(k), std::to_string(round),
                      Table::num(mean_err, 2), Table::num(worst_err, 2),
                      Table::num(r.meanJitterCycles),
                      Table::num(r.meanDelayUs),
                      Table::num(r.p99DelayCycles, 1)});
        }
        t.print(std::cout);
        t.printCsv(std::cout, "k_tradeoff");

        // Shape: over-allocation strictly improves with K.
        int failures = 0;
        for (std::size_t i = 1; i < overalloc_by_k.size(); ++i)
            if (overalloc_by_k[i] > overalloc_by_k[i - 1] + 1e-9)
                ++failures;
        std::printf("shape check (allocation granularity improves with "
                    "K): %s\n", failures == 0 ? "PASS" : "FAIL");
        return failures == 0 ? 0 : 2;
    });
}
