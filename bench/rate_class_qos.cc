/**
 * @file
 * §5.2 per-rate claim — "These jitter values are averaged over a
 * large range of connection speeds.  Actual jitter values for
 * high-speed connections will be even less and those for low-speed
 * connections will be relatively higher.  While we may not be too
 * concerned with relatively higher jitter values on a 64 Kbps
 * connection we expect that jitter values on a 10 Mbps connection
 * will be of more concern."
 *
 * This bench breaks delay and jitter down by connection rate under
 * three priority policies (the MMR biased scheme, fixed rate-derived
 * priorities, and the classical age scheme) at a fixed high load, and
 * checks that biasing gives the fast connections the low jitter the
 * paper promises.
 */

#include <cmath>
#include <map>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mmr;
    using namespace mmr::bench;
    return guardedMain([&] {
        Cli cli;
        addSweepFlags(cli);
        cli.flag("load", "0.85", "offered load");
        cli.flag("cbr-budget", "0",
                 "CBR delay budget in flit cycles (0 = no QoS "
                 "deadline accounting)");
        if (!cli.parse(argc, argv))
            return 0;
        const auto opts = sweepOptions(cli);
        const double load = cli.real("load");
        const auto budget = static_cast<Cycle>(cli.integer("cbr-budget"));

        std::printf("Per-rate QoS at %.0f%% load, 8 candidates "
                    "(jitter in router cycles)\n", 100.0 * load);

        struct Policy
        {
            std::string name;
            SchedulerKind kind;
        };
        const std::vector<Policy> policies{
            {"biased", SchedulerKind::BiasedPriority},
            {"fixed", SchedulerKind::FixedPriority},
            {"age", SchedulerKind::AgePriority},
        };

        // rate (Mb/s) -> per-policy jitter and delay means.
        std::map<double, std::vector<double>> jitter_by_rate;
        std::map<double, std::vector<double>> delay_by_rate;
        const double link = RouterConfig{}.linkRateBps;

        std::vector<ExperimentResult> polResults;
        for (const Policy &pol : policies) {
            ExperimentConfig cfg;
            cfg.router.scheduler = pol.kind;
            cfg.router.candidates = 8;
            cfg.offeredLoad = load;
            cfg.warmupCycles = opts.warmupCycles;
            cfg.measureCycles = opts.measureCycles;
            cfg.seed = opts.seed;
            cfg.cbrDelayBudget = budget;

            SingleRouterExperiment exp(cfg);
            polResults.push_back(exp.run());
            std::fprintf(stderr, "  %s done\n", pol.name.c_str());

            std::map<double, StreamStat> jitter, delay;
            for (ConnId conn : exp.metrics().connections()) {
                const SegmentParams *seg = exp.router().connection(conn);
                const ConnectionRecorder *rec =
                    exp.metrics().connection(conn);
                if (seg == nullptr || rec == nullptr ||
                    seg->interArrival <= 0.0)
                    continue;
                const double mbps =
                    link / seg->interArrival / kMbps;
                // Round to the ladder value to group identical rates.
                const double key =
                    std::round(mbps * 1000.0) / 1000.0;
                jitter[key].merge(rec->jitter());
                delay[key].merge(rec->delay());
            }
            for (const auto &[rate, stat] : jitter)
                jitter_by_rate[rate].push_back(stat.mean());
            for (const auto &[rate, stat] : delay)
                delay_by_rate[rate].push_back(stat.mean());
        }

        Table t({"rate_mbps", "jitter_biased", "jitter_fixed",
                 "jitter_age", "delay_biased_cyc", "delay_fixed_cyc",
                 "delay_age_cyc"});
        for (const auto &[rate, jit] : jitter_by_rate) {
            if (jit.size() != policies.size())
                continue;
            const auto &del = delay_by_rate[rate];
            t.addRow({Table::num(rate, 3), Table::num(jit[0], 3),
                      Table::num(jit[1], 3), Table::num(jit[2], 3),
                      Table::num(del[0], 2), Table::num(del[1], 2),
                      Table::num(del[2], 2)});
        }
        t.print(std::cout);
        t.printCsv(std::cout, "rate_class_qos");

        if (opts.percentiles) {
            // Tail columns the paper's mean-only table hides: CBR
            // delay percentiles per policy, the stage decomposition
            // at p99, and — when --cbr-budget is set — the deadline
            // violation rate and worst excess.
            Table pt({"policy", "cbr_p50", "cbr_p90", "cbr_p99",
                      "cbr_p999", "cbr_max", "qos_violation_rate",
                      "qos_worst_excess_cyc"});
            for (std::size_t i = 0; i < policies.size(); ++i) {
                const LatencySummary &s = polResults[i].cbr.latency;
                const QosCounters &q = polResults[i].cbr.qos;
                pt.addRow({policies[i].name, Table::num(s.p50, 0),
                           Table::num(s.p90, 0), Table::num(s.p99, 0),
                           Table::num(s.p999, 0),
                           Table::num(s.maxCycles, 0),
                           Table::num(q.violationRate(), 4),
                           Table::num(q.worstExcessCycles, 0)});
            }
            pt.print(std::cout);
            pt.printCsv(std::cout, "rate_class_qos_percentiles");

            Table st({"policy", "source_queue_p99", "vc_residency_p99",
                      "arb_wait_p99", "switch_traversal_p99"});
            for (std::size_t i = 0; i < policies.size(); ++i) {
                const auto p99 = [&](LatencyStage stage) {
                    return Table::num(
                        polResults[i]
                            .stageLatency[static_cast<std::size_t>(
                                stage)]
                            .p99,
                        0);
                };
                st.addRow({policies[i].name,
                           p99(LatencyStage::SourceQueue),
                           p99(LatencyStage::VcResidency),
                           p99(LatencyStage::ArbWait),
                           p99(LatencyStage::SwitchTraversal)});
            }
            st.print(std::cout);
            st.printCsv(std::cout, "rate_class_qos_stages");
        }

        // Shape checks: under biasing, the fastest ladder rate gets
        // (a) lower jitter than the slowest and (b) lower jitter than
        // it gets under the age policy, which ignores connection
        // speed entirely.
        int failures = 0;
        if (!jitter_by_rate.empty()) {
            const auto &slowest = jitter_by_rate.begin()->second;
            const auto &fastest = jitter_by_rate.rbegin()->second;
            if (!(fastest[0] <= slowest[0] + 0.05))
                ++failures;
            if (!(fastest[0] <= fastest[2] + 0.05))
                ++failures;
        }
        std::printf("shape check (biasing favors high-speed "
                    "connections): %s\n",
                    failures == 0 ? "PASS" : "FAIL");
        return failures == 0 ? 0 : 2;
    });
}
