/**
 * @file
 * §3.4 extension A4 — hybrid traffic: CBR and VBR streams sharing the
 * router with best-effort datagrams out of one pool of link and
 * buffer resources.  The MMR goal: "satisfying the QoS requirements
 * of multimedia traffic, minimizing the average latency of
 * best-effort traffic, and maximizing link utilization".
 *
 * Sweeping total load with a 50/25/25 CBR/VBR/best-effort mix, the
 * guaranteed classes must keep near-flat delay while best-effort
 * absorbs the congestion.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mmr;
    using namespace mmr::bench;
    return guardedMain([&] {
        Cli cli;
        addSweepFlags(cli);
        if (!cli.parse(argc, argv))
            return 0;
        const auto loads = loadsFromCli(cli);
        const auto opts = sweepOptions(cli);

        std::printf("Claim A4: hybrid CBR/VBR/best-effort traffic "
                    "(50/25/25 mix, biased, 8 candidates)\n");

        Table t({"offered_load", "cbr_delay_us", "vbr_delay_us",
                 "be_delay_us", "cbr_jitter", "utilization"});
        std::vector<double> cbr_delay, be_delay;
        const double ns = RouterConfig{}.flitCycleNanos();
        for (double load : loads) {
            ExperimentConfig cfg;
            cfg.offeredLoad = load;
            cfg.router.candidates = 8;
            cfg.warmupCycles = opts.warmupCycles;
            cfg.measureCycles = opts.measureCycles;
            cfg.seed = opts.seed;
            cfg.mix.cbrShare = 0.5;
            cfg.mix.vbrShare = 0.25;
            cfg.mix.beShare = 0.25;
            cfg.mix.vbrProfile.framesPerSecond = 500.0;
            const ExperimentResult r = runSingleRouter(cfg);
            std::fprintf(stderr, "  load %.2f done\n", load);
            cbr_delay.push_back(r.cbr.delayCycles.mean() * ns / 1000.0);
            be_delay.push_back(r.bestEffort.delayCycles.mean() * ns /
                               1000.0);
            t.addRow({Table::num(load, 2),
                      Table::num(cbr_delay.back()),
                      Table::num(r.vbr.delayCycles.mean() * ns / 1000.0),
                      Table::num(be_delay.back()),
                      Table::num(r.cbr.jitterCycles.mean()),
                      Table::num(r.utilization, 3)});
        }
        t.print(std::cout);
        t.printCsv(std::cout, "hybrid_traffic");

        // Shape: at the top load, best-effort pays and the guaranteed
        // class stays fast.
        int failures = 0;
        const std::size_t last = loads.size() - 1;
        if (!(cbr_delay[last] <= be_delay[last]))
            ++failures;
        if (cbr_delay[last] > 4.0 * std::max(1e-9, cbr_delay[0]) &&
            cbr_delay[last] > 2.0)
            ++failures; // guaranteed delay must stay near-flat
        std::printf("shape check (CBR protected, best-effort absorbs "
                    "congestion): %s\n",
                    failures == 0 ? "PASS" : "FAIL");
        return failures == 0 ? 0 : 2;
    });
}
