/**
 * @file
 * Fault-tolerance extension — the MMR's lineage (EPB comes from the
 * fault-tolerant routing protocols of Gaughan & Yalamanchili [17];
 * the Reliable Router and Ariadne references point the same way).
 * This bench kills links in a live mesh while streams and datagrams
 * flow, and measures: flits lost on the wire, connections failed and
 * re-established by the interfaces, datagram continuity over the
 * recomputed up*-down* routes, and end-to-end delay before/after.
 */

#include <memory>

#include "bench_common.hh"
#include "network/interface.hh"
#include "network/network.hh"
#include "sim/kernel.hh"

int
main(int argc, char **argv)
{
    using namespace mmr;
    using namespace mmr::bench;
    return guardedMain([&] {
        Cli cli;
        cli.flag("seed", "21", "random seed");
        cli.flag("phase", "20000", "cycles between failure events");
        if (!cli.parse(argc, argv))
            return 0;
        const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
        const auto phase = static_cast<Cycle>(cli.integer("phase"));

        std::printf("Fault tolerance on a 4x4 mesh: streams + "
                    "datagrams across repeated link failures\n");

        NetworkConfig ncfg;
        ncfg.router.vcsPerPort = 32;
        ncfg.router.candidates = 8;
        ncfg.seed = seed;
        Network net(Topology::mesh2d(4, 4), ncfg);
        Kernel kernel;
        kernel.add(&net);

        std::vector<std::unique_ptr<NetworkInterface>> hosts;
        for (NodeId n = 0; n < 16; ++n) {
            hosts.push_back(
                std::make_unique<NetworkInterface>(net, n, seed + n));
            hosts.back()->setAutoReestablish(true);
            hosts.back()->openCbrStream((n + 5) % 16, 10 * kMbps);
            hosts.back()->addBestEffortFlow((n + 3) % 16, 2 * kMbps);
        }

        // Four scattered link failures that leave the mesh connected
        // (killing all four column-1/2 links would partition it).
        const std::vector<std::pair<NodeId, NodeId>> failures{
            {5, 6}, {9, 13}, {2, 3}, {12, 13}};
        net.endToEnd().startMeasurement(phase / 4);

        Table t({"event", "cycle", "streams_alive", "lost_flits",
                 "conns_failed", "reestablished", "datagrams_ok_pct"});
        auto snapshot = [&](const std::string &event) {
            unsigned alive = 0, reest = 0;
            for (auto &h : hosts) {
                alive += h->establishedStreams();
                reest += h->reestablishedStreams();
            }
            const double dg_pct =
                net.datagramsSent()
                    ? 100.0 *
                          static_cast<double>(net.datagramsDelivered()) /
                          static_cast<double>(net.datagramsSent())
                    : 100.0;
            t.addRow({event, std::to_string(kernel.now()),
                      std::to_string(alive),
                      std::to_string(net.flitsLostToFailures()),
                      std::to_string(net.connectionsFailed()),
                      std::to_string(reest), Table::num(dg_pct, 2)});
        };

        auto run_phase = [&] {
            for (Cycle c = 0; c < phase; ++c) {
                for (auto &h : hosts)
                    h->tick(kernel.now());
                kernel.step();
            }
        };

        run_phase();
        snapshot("baseline");
        for (const auto &[a, b] : failures) {
            net.failLink(a, b);
            run_phase();
            snapshot("failed " + std::to_string(a) + "-" +
                     std::to_string(b));
        }
        // Let the in-flight tail drain before the final accounting.
        for (Cycle c = 0; c < 2000; ++c) {
            for (auto &h : hosts)
                h->tick(kernel.now());
            kernel.step();
        }
        snapshot("final");
        t.print(std::cout);
        t.printCsv(std::cout, "fault_tolerance");

        int failures_cnt = 0;
        unsigned alive = 0;
        for (auto &h : hosts)
            alive += h->establishedStreams();
        // Every stream must be running at the end (each failure leaves
        // the 4x4 mesh connected, so re-establishment always succeeds).
        if (alive != 16)
            ++failures_cnt;
        if (net.connectionsFailed() == 0)
            ++failures_cnt; // the failures must actually have bitten
        if (net.datagramsDelivered() + 64 < net.datagramsSent())
            ++failures_cnt; // datagram loss beyond the in-flight tail
        std::printf("shape check (all streams re-established; datagram "
                    "continuity): %s\n",
                    failures_cnt == 0 ? "PASS" : "FAIL");
        return failures_cnt == 0 ? 0 : 2;
    });
}
