/**
 * @file
 * Session-churn bench: acceptance ratio and measured setup latency
 * versus offered session arrival rate.
 *
 * The paper's admission-control machinery (EPB probes, per-class QoS)
 * is exercised here under *populations*: sessions arrive on a Poisson
 * schedule (optionally shaped by a flash-crowd ramp and a diurnal
 * curve), hold for an exponential time while injecting CBR/VBR flits,
 * and depart.  Each sweep point reports the session acceptance ratio,
 * the measured probe+ack setup-latency percentiles, and the CBR QoS
 * violation rate — clean and (via --faults) under a composed
 * link-fault schedule, the churn x faults stress scenario.
 *
 * A scale phase (--sessions, full mode only) runs one overloaded
 * point until the cumulative population crosses the target —
 * defaulting to one million sessions in this process — and reports
 * the resident per-live-session footprint, asserting the <= 64 B
 * pooled-state contract and a leak-free drain.
 *
 * --smoke shrinks the grid and cycle counts for CI; its table output
 * is locked byte-exact by results/golden/churn.txt.
 */

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "harness/network_experiment.hh"
#include "sim/invariant.hh"

namespace
{

unsigned gShards = 1; ///< --shards, applied to every run in the bench

struct ChurnKnobs
{
    std::string topo = "mesh:3x3";
    mmr::Cycle warmup = 1000;
    mmr::Cycle measure = 12000;
    mmr::Cycle drain = 3000;
    std::uint64_t seed = 42;
    mmr::Cycle holding = 2000;
    std::string mix;
    std::string flash;
    std::string diurnal;
    std::uint32_t maxLive = 4096;
    mmr::Cycle cbrBudget = 400;
    mmr::FaultModel faults; ///< zero rates = clean
};

mmr::NetworkExperimentConfig
churnConfig(const ChurnKnobs &k, double arrivals_per_1k)
{
    using namespace mmr;
    NetworkExperimentConfig c;
    c.net.shards = gShards;
    c.topologySpec = k.topo;
    c.seed = k.seed;
    c.net.router.vcsPerPort = 32;
    c.net.router.candidates = 8;
    // Pure population workload: no static per-host streams or flows.
    c.cbrStreamsPerHost = 0;
    c.beFlowsPerHost = 0;
    c.warmupCycles = k.warmup;
    c.measureCycles = k.measure;
    c.drainCycles = k.drain;
    c.cbrDelayBudgetCycles = k.cbrBudget;
    c.faults = k.faults;
    c.churn.enabled = true;
    c.churn.maxLiveSessions = k.maxLive;
    c.churn.workload.arrivalsPer1k = arrivals_per_1k;
    c.churn.workload.holdingMeanCycles = k.holding;
    if (!k.mix.empty())
        c.churn.workload.mix = parseSessionMix(k.mix);
    if (!k.flash.empty())
        c.churn.workload.flash = parseFlashCrowd(k.flash);
    if (!k.diurnal.empty())
        c.churn.workload.diurnal = parseDiurnal(k.diurnal);
    return c;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mmr;
    using namespace mmr::bench;
    return guardedMain([&] {
        Cli cli;
        cli.flag("seed", "42", "experiment seed");
        cli.flag("topo", "mesh:3x3", "topology spec");
        cli.flag("warmup", "1000", "warm-up flit cycles");
        cli.flag("measure", "12000", "measured flit cycles");
        cli.flag("drain", "3000", "post-measurement drain cycles");
        cli.flag("arrivals", "25,100,250,500",
                 "offered session arrival rates, sessions per 1000 "
                 "cycles (sweep grid)");
        cli.flag("holding", "2000",
                 "mean session holding time in flit cycles "
                 "(exponential)");
        cli.flag("mix", "",
                 "rate-class mix, RATE=WEIGHT pairs (e.g. "
                 "64k=4,1.54m=2,vbr:5m=1); default: paper rate ladder");
        cli.flag("flash-crowd", "",
                 "flash-crowd overlay, e.g. at=2000,ramp=1500,"
                 "hold=3000,peak=4");
        cli.flag("diurnal", "",
                 "diurnal modulation, e.g. period=8000,amp=0.5");
        cli.flag("max-live", "4096",
                 "live-session pool cap (bounds memory at 64 B each)");
        cli.flag("cbr-budget", "400",
                 "CBR end-to-end delay budget in flit cycles");
        cli.flag("faults", "",
                 "fault model composed with the churn workload, e.g. "
                 "fail=0.05,repair=4000,drop=0.02 (adds faulted "
                 "columns to the sweep)");
        cli.flag("sessions", "1000000",
                 "scale phase: cumulative-session target for the "
                 "million-session run (0 disables; off in --smoke)");
        cli.flag("smoke", "0",
                 "CI mode: tiny grid and cycle counts, golden-locked "
                 "output, no scale phase");
        cli.flag("shards", "1",
                 "intra-run shard count for the parallel network core "
                 "(results are bit-identical across values)");
        if (!cli.parse(argc, argv))
            return 0;
        gShards = static_cast<unsigned>(cli.integer("shards"));
        const bool smoke = cli.boolean("smoke");

        ChurnKnobs k;
        k.topo = cli.str("topo");
        k.seed = static_cast<std::uint64_t>(cli.integer("seed"));
        k.warmup = static_cast<Cycle>(cli.integer("warmup"));
        k.measure = static_cast<Cycle>(cli.integer("measure"));
        k.drain = static_cast<Cycle>(cli.integer("drain"));
        k.holding = static_cast<Cycle>(cli.integer("holding"));
        k.mix = cli.str("mix");
        k.flash = cli.str("flash-crowd");
        k.diurnal = cli.str("diurnal");
        k.maxLive = static_cast<std::uint32_t>(cli.integer("max-live"));
        k.cbrBudget = static_cast<Cycle>(cli.integer("cbr-budget"));

        std::vector<double> rates;
        for (const auto &p : cli.list("arrivals"))
            rates.push_back(std::stod(p));
        if (smoke) {
            rates = {50.0, 400.0};
            k.measure = 6000;
            k.drain = 2500;
        }

        const std::string faults_spec = cli.str("faults");
        FaultModel fault_model;
        if (!faults_spec.empty())
            fault_model = parseFaultModel(faults_spec);
        else if (smoke)
            // The smoke run always exercises the churn x faults
            // composition; CI runs it with and without --faults, and
            // this default keeps the faulted columns golden-locked.
            fault_model = parseFaultModel("fail=0.3,repair=2500");
        const bool with_faults = !faults_spec.empty() || smoke;

        std::printf("Session churn on %s: acceptance and setup "
                    "latency vs offered arrival rate\n",
                    k.topo.c_str());

        Table t({"arrivals_per_1k", "acceptance", "setup_p50",
                 "setup_p99", "qos_viol_rate", "completed",
                 "abandoned", "peak_live", "acceptance_faults",
                 "abandoned_faults"});
        std::vector<NetworkExperimentResult> clean;
        std::vector<NetworkExperimentResult> faulted;
        for (double rate : rates) {
            const auto r = runNetworkExperiment(churnConfig(k, rate));
            clean.push_back(r);
            NetworkExperimentResult rf;
            if (with_faults) {
                ChurnKnobs kf = k;
                kf.faults = fault_model;
                rf = runNetworkExperiment(churnConfig(kf, rate));
                faulted.push_back(rf);
            }
            t.addRow({Table::num(rate, 0),
                      Table::num(r.sessionAcceptance, 4),
                      Table::num(r.sessionSetupLatency.p50, 0),
                      Table::num(r.sessionSetupLatency.p99, 0),
                      Table::num(r.qosViolationRate, 4),
                      std::to_string(r.sessionsCompleted),
                      std::to_string(r.sessionsAbandoned),
                      std::to_string(r.sessionPeakLive),
                      with_faults
                          ? Table::num(rf.sessionAcceptance, 4)
                          : std::string("-"),
                      with_faults
                          ? std::to_string(rf.sessionsAbandoned)
                          : std::string("-")});
            std::fprintf(stderr,
                         "  arrivals %.0f/1k done (%llu sessions)\n",
                         rate,
                         static_cast<unsigned long long>(
                             r.sessionsArrived));
        }
        t.print(std::cout);
        t.printCsv(std::cout, "churn");
        t.printJson(std::cout, "churn");

        // ---- shape checks -----------------------------------------
        int failures = 0;
        auto check = [&](bool ok, const char *what) {
            std::printf("shape check: %-58s %s\n", what,
                        ok ? "PASS" : "FAIL");
            if (!ok)
                ++failures;
        };

        bool decided_all = true;
        bool drained_all = true;
        bool ledger_all = true;
        for (const auto *sweep : {&clean, &faulted}) {
            for (const auto &r : *sweep) {
                decided_all &= r.sessionsArrived ==
                               r.sessionsAdmitted + r.sessionsRejected;
                drained_all &= r.sessionsLeakedAtEnd == 0 &&
                               r.pendingSetupsAtEnd == 0 &&
                               r.openConnsAtEnd == 0;
                ledger_all &= r.sessionsAdmitted ==
                              r.sessionsCompleted + r.sessionsAbandoned;
            }
        }
        check(decided_all,
              "every arrival is decided: admitted + rejected");
        check(ledger_all,
              "admitted sessions all complete or are abandoned");
        check(drained_all,
              "drain leaves no sessions, probes or connections");
        check(clean.front().sessionAcceptance >=
                  clean.back().sessionAcceptance,
              "acceptance does not rise with offered session load");
        check(clean.front().sessionsAbandoned == 0,
              "clean runs abandon no sessions");
        bool setup_measured = true;
        for (const auto &r : clean)
            setup_measured &= r.sessionSetupLatency.count > 0 &&
                              r.sessionSetupLatency.p50 > 0;
        check(setup_measured,
              "setup latency is measured for admitted sessions");
        if (with_faults)
            check(faulted.back().sessionsAbandoned > 0 ||
                      faulted.back().connectionsFailed == 0,
                  "faulted runs account churn losses as abandoned");

        {
            const auto again =
                runNetworkExperiment(churnConfig(k, rates.front()));
            check(networkResultDigest(again) ==
                      networkResultDigest(clean.front()),
                  "same-seed churn runs reproduce bit-identical "
                  "digests");
        }

        // ---- scale phase: one process, >= 1M cumulative sessions --
        const auto target =
            static_cast<std::uint64_t>(cli.integer("sessions"));
        if (!smoke && target > 0) {
            // Offered arrivals sized to cross the target within the
            // measured window; most are refused at admission under
            // this overload, which is exactly the regime the
            // acceptance ratio is about.
            const double per_cycle = 12.5;
            ChurnKnobs ks = k;
            ks.warmup = 500;
            ks.measure = static_cast<Cycle>(
                std::ceil(static_cast<double>(target) / per_cycle *
                          1.10));
            ks.drain = 4000;
            ks.maxLive = 65536;
            std::printf("\nscale phase: targeting %llu cumulative "
                        "sessions over %llu cycles\n",
                        static_cast<unsigned long long>(target),
                        static_cast<unsigned long long>(ks.measure));
            const auto r = runNetworkExperiment(
                churnConfig(ks, per_cycle * 1000.0));
            const double bytes_per_live =
                r.sessionPeakLive
                    ? static_cast<double>(r.sessionPoolBytes) /
                          static_cast<double>(r.sessionPeakLive)
                    : 0.0;
            std::printf(
                "scale: %llu sessions (%llu admitted, %llu rejected), "
                "peak live %llu, pool %llu B, %llu B/record, "
                "%.1f B/live-session, %llu leaked\n",
                static_cast<unsigned long long>(r.sessionsArrived),
                static_cast<unsigned long long>(r.sessionsAdmitted),
                static_cast<unsigned long long>(r.sessionsRejected),
                static_cast<unsigned long long>(r.sessionPeakLive),
                static_cast<unsigned long long>(r.sessionPoolBytes),
                static_cast<unsigned long long>(r.sessionLiveBytes),
                bytes_per_live,
                static_cast<unsigned long long>(
                    r.sessionsLeakedAtEnd));
            check(r.sessionsArrived >= target,
                  "scale run crosses the cumulative-session target");
            check(r.sessionLiveBytes <= 64,
                  "session records stay within 64 B");
            check(bytes_per_live <= 2.0 * 64.0,
                  "resident pool bytes per peak live session bounded");
            check(r.sessionsLeakedAtEnd == 0 &&
                      r.pendingSetupsAtEnd == 0 &&
                      r.openConnsAtEnd == 0,
                  "million-session drain is leak-free");
        }

        std::printf("churn checks: %s\n",
                    failures == 0 ? "ALL PASS" : "FAIL");
        return failures == 0 ? 0 : 2;
    });
}
