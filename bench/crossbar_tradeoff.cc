/**
 * @file
 * §3.3 ablation A1 — crossbar organization trade-off: silicon area
 * (crosspoint-bits) and arbitration depth for the multiplexed,
 * partially de-multiplexed and fully de-multiplexed organizations as
 * the virtual-channel count V grows.  Verifies the paper's V and V^2
 * area ratios and the §6 switch-setting timing budget (64-128 ns for
 * 1-2 Gb/s links with 128-bit flits).
 */

#include <cstdio>
#include <iostream>

#include "base/cli.hh"
#include "base/table.hh"
#include "bench_common.hh"
#include "router/crossbar.hh"

int
main(int argc, char **argv)
{
    using namespace mmr;
    using namespace mmr::bench;
    return guardedMain([&] {
        Cli cli;
        cli.flag("ports", "8", "router degree");
        cli.flag("gate_ns", "2.0", "gate delay for the arbiter tree");
        if (!cli.parse(argc, argv))
            return 0;
        const auto ports = static_cast<unsigned>(cli.integer("ports"));
        const double gate_ns = cli.real("gate_ns");

        std::printf("Claim A1: crossbar organization cost, %ux%u router "
                    "(areas in crosspoint-bits)\n", ports, ports);

        Table t({"vcs", "area_mux", "area_partial", "area_full",
                 "ratio_partial", "ratio_full", "arb_levels_mux",
                 "arb_levels_demux"});
        int failures = 0;
        for (unsigned v : {16u, 64u, 256u, 1024u}) {
            CrossbarModel mux{CrossbarOrg::Multiplexed, ports, v, 128};
            CrossbarModel part{CrossbarOrg::PartiallyDemuxed, ports, v,
                               128};
            CrossbarModel full{CrossbarOrg::FullyDemuxed, ports, v, 128};
            t.addRow({std::to_string(v), Table::num(mux.areaUnits(), 0),
                      Table::num(part.areaUnits(), 0),
                      Table::num(full.areaUnits(), 0),
                      Table::num(part.areaRatioVsMultiplexed(), 0),
                      Table::num(full.areaRatioVsMultiplexed(), 0),
                      std::to_string(mux.arbitrationDelayUnits()),
                      std::to_string(full.arbitrationDelayUnits())});
            if (part.areaRatioVsMultiplexed() != static_cast<double>(v))
                ++failures;
            if (full.areaRatioVsMultiplexed() !=
                static_cast<double>(v) * v)
                ++failures;
        }
        t.print(std::cout);
        t.printCsv(std::cout, "crossbar_area");

        // §6 timing budget: switch settings at 64-128 ns.
        Table timing({"link_gbps", "flit_cycle_ns", "mux_ok",
                      "partial_ok", "full_ok"});
        for (double gbps : {1.0, 1.24, 2.0}) {
            const double cycle = flitCycleNs(128, gbps * kGbps);
            CrossbarModel mux{CrossbarOrg::Multiplexed, ports, 256, 128};
            CrossbarModel part{CrossbarOrg::PartiallyDemuxed, ports, 256,
                               128};
            CrossbarModel full{CrossbarOrg::FullyDemuxed, ports, 256,
                               128};
            timing.addRow(
                {Table::num(gbps, 2), Table::num(cycle, 1),
                 mux.meetsCycleTime(gate_ns, cycle) ? "yes" : "no",
                 part.meetsCycleTime(gate_ns, cycle) ? "yes" : "no",
                 full.meetsCycleTime(gate_ns, cycle) ? "yes" : "no"});
            if (!mux.meetsCycleTime(gate_ns, cycle))
                ++failures;
        }
        timing.print(std::cout);
        timing.printCsv(std::cout, "crossbar_timing");

        std::printf("shape check (area ratios V and V^2; multiplexed "
                    "meets 64-128ns): %s\n",
                    failures == 0 ? "PASS" : "FAIL");
        return failures == 0 ? 0 : 2;
    });
}
