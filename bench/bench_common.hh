/**
 * @file
 * Shared infrastructure for the figure-reproduction benches: the §5
 * experiment grid (offered-load sweeps over scheduler configurations)
 * and uniform table/CSV output so each binary prints exactly the
 * series the paper plots.
 */

#ifndef MMR_BENCH_BENCH_COMMON_HH
#define MMR_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <exception>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "base/cli.hh"
#include "base/table.hh"
#include "harness/single_router.hh"
#include "sim/sweep.hh"

namespace mmr::bench
{

/** The offered-load grid used by Figures 3-5. */
inline std::vector<double>
defaultLoads()
{
    return {0.10, 0.30, 0.50, 0.70, 0.80, 0.90, 0.95};
}

/** One curve of a paper figure. */
struct Series
{
    std::string label;
    SchedulerKind scheduler;
    unsigned candidates;
};

struct SweepOptions
{
    Cycle warmupCycles = 20000;
    Cycle measureCycles = 100000;
    std::uint64_t seed = 42;
    WorkloadMix mix;
    /** Shared observability outputs; each run of a sweep rewrites the
     * file paths with a "<label>-<load>" suffix so points do not
     * clobber each other. */
    ObsConfig obs;
    /** Print cycles/sec + events/sec per point to stderr. */
    bool printThroughput = false;
    /** Append per-stage / per-class percentile blocks (--percentiles;
     * off by default so golden CSV captures stay byte-identical). */
    bool percentiles = false;
    /** Worker threads for the points of one sweep (sim/sweep.hh);
     * 1 = serial.  Results and digests are identical either way. */
    unsigned jobs = 1;
};

/** Per-run observability config: suffix every output path. */
inline ObsConfig
obsForRun(const ObsConfig &shared, const std::string &label, double load)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", load);
    const std::string suffix = label + "-" + buf;
    ObsConfig c = shared;
    c.tracePath = obsPathWithSuffix(c.tracePath, suffix);
    c.statsJsonPath = obsPathWithSuffix(c.statsJsonPath, suffix);
    c.statsCsvPath = obsPathWithSuffix(c.statsCsvPath, suffix);
    c.vcdPath = obsPathWithSuffix(c.vcdPath, suffix);
    return c;
}

/** Run one series over the load grid, on opts.jobs worker threads. */
inline std::vector<ExperimentResult>
runSweep(const Series &series, const std::vector<double> &loads,
         const SweepOptions &opts)
{
    std::vector<ExperimentConfig> cfgs;
    cfgs.reserve(loads.size());
    for (double load : loads) {
        ExperimentConfig cfg;
        cfg.router.scheduler = series.scheduler;
        cfg.router.candidates = series.candidates;
        cfg.offeredLoad = load;
        cfg.warmupCycles = opts.warmupCycles;
        cfg.measureCycles = opts.measureCycles;
        cfg.seed = opts.seed;
        cfg.mix = opts.mix;
        cfg.obs = obsForRun(opts.obs, series.label, load);
        cfgs.push_back(std::move(cfg));
    }
    const auto progress = [&](std::size_t i,
                              const ExperimentResult &r) {
        if (opts.printThroughput) {
            std::fprintf(stderr,
                         "  %-16s load %.2f done (%.0f cycles/s, "
                         "%.0f events/s)\n",
                         series.label.c_str(), loads[i],
                         r.profile.cyclesPerSec(),
                         r.profile.eventsPerSec());
        } else {
            std::fprintf(stderr, "  %-16s load %.2f done\n",
                         series.label.c_str(), loads[i]);
        }
    };
    return runExperiments(cfgs, opts.jobs, progress);
}

/**
 * Emit one table + CSV block: rows = loads, one column per series,
 * cell = metric(result).
 */
inline void
printFigure(const std::string &name,
            const std::vector<Series> &series,
            const std::vector<double> &loads,
            const std::vector<std::vector<ExperimentResult>> &results,
            const std::function<double(const ExperimentResult &)> &metric,
            int precision = 4)
{
    std::vector<std::string> headers{"offered_load"};
    for (const Series &s : series)
        headers.push_back(s.label);
    Table t(std::move(headers));
    for (std::size_t li = 0; li < loads.size(); ++li) {
        std::vector<std::string> row{Table::num(loads[li], 2)};
        for (std::size_t si = 0; si < series.size(); ++si)
            row.push_back(Table::num(metric(results[si][li]), precision));
        t.addRow(std::move(row));
    }
    t.print(std::cout);
    t.printCsv(std::cout, name);
    t.printJson(std::cout, name);
}

/**
 * Percentile companions to a figure: total-delay p50/p90/p99/p99.9
 * blocks (columns = series) plus a per-stage p99 block per latency
 * stage.  Gated behind --percentiles by the callers so the default
 * output — and therefore the golden-file captures — never changes.
 */
inline void
printPercentiles(
    const std::string &name, const std::vector<Series> &series,
    const std::vector<double> &loads,
    const std::vector<std::vector<ExperimentResult>> &results)
{
    const std::pair<const char *, Cycle LatencySummary::*> pcts[] = {
        {"p50", &LatencySummary::p50},
        {"p90", &LatencySummary::p90},
        {"p99", &LatencySummary::p99},
        {"p999", &LatencySummary::p999},
    };
    for (const auto &[key, field] : pcts) {
        printFigure(
            name + "_delay_" + key, series, loads, results,
            [field](const ExperimentResult &r) {
                LatencyHistogram all = r.cbr.delayHist;
                all.merge(r.vbr.delayHist);
                all.merge(r.bestEffort.delayHist);
                return static_cast<double>(all.summarize().*field);
            },
            0);
    }
    for (std::size_t s = 0; s < kNumLatencyStages; ++s) {
        if (results.empty() || results[0].empty() ||
            results[0][0].stageLatency[s].count == 0)
            continue; // stage never fed (LinkTransit, single router)
        printFigure(
            name + "_stage_" +
                to_string(static_cast<LatencyStage>(s)) + "_p99",
            series, loads, results,
            [s](const ExperimentResult &r) {
                return static_cast<double>(r.stageLatency[s].p99);
            },
            0);
    }
}

/** Standard sweep flags shared by the figure benches. */
inline void
addSweepFlags(Cli &cli)
{
    cli.flag("measure", "100000", "measured flit cycles per point");
    cli.flag("warmup", "20000", "warm-up flit cycles per point");
    cli.flag("seed", "42", "workload seed");
    cli.flag("loads", "", "comma-separated loads (default: paper grid)");
    cli.flag("throughput", "0",
             "print simulator cycles/sec + events/sec per point");
    cli.flag("jobs", "1",
             "worker threads per sweep (0 = hardware concurrency)");
    cli.flag("percentiles", "0",
             "append per-stage / per-class latency percentile blocks "
             "(p50/p90/p99/p99.9)");
    addObsFlags(cli);
}

inline SweepOptions
sweepOptions(const Cli &cli)
{
    SweepOptions o;
    o.measureCycles = static_cast<Cycle>(cli.integer("measure"));
    o.warmupCycles = static_cast<Cycle>(cli.integer("warmup"));
    o.seed = static_cast<std::uint64_t>(cli.integer("seed"));
    o.obs = obsConfigFromCli(cli);
    o.printThroughput = cli.boolean("throughput") ||
                        o.obs.profileComponents;
    o.percentiles = cli.boolean("percentiles");
    const long jobs = cli.integer("jobs");
    o.jobs = jobs == 0 ? defaultJobs()
                       : static_cast<unsigned>(jobs < 1 ? 1 : jobs);
    return o;
}

inline std::vector<double>
loadsFromCli(const Cli &cli)
{
    const auto parts = cli.list("loads");
    if (parts.empty())
        return defaultLoads();
    std::vector<double> loads;
    for (const auto &p : parts)
        loads.push_back(std::stod(p));
    return loads;
}

/** main() wrapper: converts mmr_fatal into a clean error exit. */
inline int
guardedMain(const std::function<int()> &body)
{
    try {
        return body();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}

} // namespace mmr::bench

#endif // MMR_BENCH_BENCH_COMMON_HH
