/**
 * @file
 * Figure 4 reproduction — "Delay vs. Offered Load, 1.24 Gb Link":
 * average switch delay in microseconds for fixed vs biased priority
 * scheduling at 1, 2, 4 and 8 candidates per input port, plus the
 * §5.2 spot checks:
 *
 *  - 2 candidates at 70% load: biased well under a microsecond while
 *    fixed sits in the microseconds (paper: 0.82 us vs ~5 us);
 *  - 8 candidates: biased delays in the sub-microsecond range across
 *    loads (paper: 0.4-0.6 us) against 1-2 us for fixed;
 *  - no saturation of the 8-candidate configuration before 95% load.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mmr;
    using namespace mmr::bench;
    return guardedMain([&] {
        Cli cli;
        addSweepFlags(cli);
        if (!cli.parse(argc, argv))
            return 0;
        const auto loads = loadsFromCli(cli);
        const auto opts = sweepOptions(cli);

        const std::vector<Series> series{
            {"biased_1c", SchedulerKind::BiasedPriority, 1},
            {"biased_2c", SchedulerKind::BiasedPriority, 2},
            {"biased_4c", SchedulerKind::BiasedPriority, 4},
            {"biased_8c", SchedulerKind::BiasedPriority, 8},
            {"fixed_1c", SchedulerKind::FixedPriority, 1},
            {"fixed_2c", SchedulerKind::FixedPriority, 2},
            {"fixed_4c", SchedulerKind::FixedPriority, 4},
            {"fixed_8c", SchedulerKind::FixedPriority, 8},
        };

        std::printf("Figure 4: delay (microseconds) vs offered load, "
                    "fixed and biased priorities\n");
        std::vector<std::vector<ExperimentResult>> results;
        for (const Series &s : series)
            results.push_back(runSweep(s, loads, opts));

        printFigure("fig4_delay_us", series, loads, results,
                    [](const ExperimentResult &r) {
                        return r.meanDelayUs;
                    });
        if (opts.percentiles)
            printPercentiles("fig4", series, loads, results);

        // ---- §5.2 spot checks -------------------------------------
        auto at_load = [&](double want) -> std::size_t {
            for (std::size_t i = 0; i < loads.size(); ++i)
                if (std::abs(loads[i] - want) < 1e-9)
                    return i;
            return loads.size();
        };

        int failures = 0;
        auto check = [&](bool ok, const std::string &what) {
            std::printf("spot check: %-58s %s\n", what.c_str(),
                        ok ? "PASS" : "FAIL");
            if (!ok)
                ++failures;
        };

        const std::size_t l70 = at_load(0.70);
        if (l70 < loads.size()) {
            const double b2 = results[1][l70].meanDelayUs;
            const double f2 = results[5][l70].meanDelayUs;
            check(b2 < 1.5, "2C biased @70%: sub-1.5us (paper 0.82us)");
            check(f2 > 2.0 * b2,
                  "2C @70%: fixed at least 2x biased (paper ~6x)");
        }
        const std::size_t l95 = at_load(0.95);
        if (l95 < loads.size()) {
            const double b8 = results[3][l95].meanDelayUs;
            check(b8 < 1.5,
                  "8C biased stays sub-1.5us to 95% (paper 0.4-0.6us)");
            check(results[3][l95].utilization > 0.85,
                  "8C biased carries ~95% load (no early saturation)");
        }
        for (std::size_t li = 0; li < loads.size(); ++li) {
            if (loads[li] < 0.3 || loads[li] > 0.9)
                continue;
            if (results[3][li].meanDelayUs >
                results[7][li].meanDelayUs) {
                ++failures;
                std::printf("shape violation: 8C biased slower than "
                            "fixed at load %.2f\n", loads[li]);
            }
        }
        std::printf("figure 4 checks: %s\n",
                    failures == 0 ? "ALL PASS" : "FAILURES PRESENT");
        return failures == 0 ? 0 : 2;
    });
}
