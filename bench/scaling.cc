/**
 * @file
 * Network-scale bench: one big run across many routers and shards.
 *
 * Charts cycles/s and resident bytes-per-router versus router count
 * for the large-topology generators (multistage MIN, fat-tree,
 * leaf-spine) at several intra-run shard counts — the scaling story
 * the shard-parallel network core exists to tell.  `--routers=N`
 * picks the smallest instance of the chosen generator with at least N
 * routers (the exact node count is reported).
 *
 * Two shape checks gate the run:
 *  - the networkResultDigest of every (topology, shard-count) cell is
 *    identical to the serial (--shards=1) digest — the determinism
 *    contract of DESIGN.md §12;
 *  - the biggest instance really is >= the requested router count.
 *
 * On a single-core host the shard speedup column is annotated as
 * unmeasurable (the workers time-slice one core); the absolute
 * cycles/s and bytes-per-router columns remain meaningful.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "harness/network_experiment.hh"

namespace
{

using namespace mmr;

/** Resident set size, bytes (0 when /proc is unavailable). */
std::uint64_t
rssBytes()
{
    std::ifstream status("/proc/self/status");
    std::string line;
    while (std::getline(status, line)) {
        if (line.rfind("VmRSS:", 0) == 0)
            return std::strtoull(line.c_str() + 6, nullptr, 10) * 1024;
    }
    return 0;
}

/**
 * Smallest instance of @p kind with at least @p routers nodes.
 * Returns the spec string and reports the node count via @p nodes.
 */
std::string
specForRouters(const std::string &kind, unsigned routers,
               unsigned &nodes)
{
    if (kind == "min") {
        // radix-4 butterfly: stages * 4^(stages-1) nodes.
        for (unsigned stages = 2;; ++stages) {
            unsigned width = 1;
            for (unsigned i = 1; i < stages; ++i)
                width *= 4;
            if (stages * width >= routers) {
                nodes = stages * width;
                return "min:4:" + std::to_string(stages);
            }
        }
    }
    if (kind == "fattree") {
        // k^2 pod switches + (k/2)^2 cores.
        for (unsigned k = 4;; k += 2) {
            const unsigned n = k * k + (k / 2) * (k / 2);
            if (n >= routers) {
                nodes = n;
                return "fattree:" + std::to_string(k);
            }
        }
    }
    if (kind == "leafspine") {
        // Fixed 16 spines; leaves make up the rest.
        const unsigned spines = 16;
        const unsigned leaves =
            routers > spines ? routers - spines : 1;
        nodes = spines + leaves;
        return "leafspine:" + std::to_string(spines) + ":" +
               std::to_string(leaves);
    }
    mmr_fatal("unknown --topo-kind '", kind,
              "' (min/fattree/leafspine)");
}

NetworkExperimentConfig
scalingConfig(const std::string &spec, std::uint64_t seed,
              unsigned shards, Cycle warmup, Cycle measure)
{
    NetworkExperimentConfig c;
    c.topologySpec = spec;
    c.seed = seed;
    c.net.shards = shards;
    // Lean per-router footprint so thousands of routers fit: the
    // bench measures throughput scaling, not buffer capacity.
    c.net.router.vcsPerPort = 8;
    c.net.router.candidates = 4;
    c.cbrStreamsPerHost = 1;
    c.cbrRateBps = 10 * kMbps;
    c.beFlowsPerHost = 0;
    c.warmupCycles = warmup;
    c.measureCycles = measure;
    c.drainCycles = warmup / 2;
    return c;
}

struct Cell
{
    unsigned shards;
    double cyclesPerSec;
    std::uint64_t digest;
    std::uint64_t rssAfter;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace mmr::bench;
    return guardedMain([&] {
        Cli cli;
        cli.flag("routers", "1024",
                 "minimum router count (the generator rounds up)");
        cli.flag("topo-kind", "min",
                 "generator family: min, fattree, leafspine");
        cli.flag("shards", "1,2,4,8", "shard counts to chart");
        cli.flag("seed", "42", "experiment seed");
        cli.flag("warmup", "200", "warm-up flit cycles");
        cli.flag("measure", "600", "measured flit cycles");
        cli.flag("smoke", "0",
                 "smoke mode: 256-router run asserting digest "
                 "equality only (CI scaling-smoke job)");
        if (!cli.parse(argc, argv))
            return 0;

        const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
        const auto warmup = static_cast<Cycle>(cli.integer("warmup"));
        const auto measure = static_cast<Cycle>(cli.integer("measure"));
        const bool smoke = cli.integer("smoke") != 0;
        const unsigned routers = smoke
            ? 256
            : static_cast<unsigned>(cli.integer("routers"));
        std::vector<unsigned> shardCounts;
        for (const auto &p : cli.list("shards"))
            shardCounts.push_back(
                static_cast<unsigned>(std::stoul(p)));

        unsigned nodes = 0;
        const std::string spec =
            specForRouters(cli.str("topo-kind"), routers, nodes);

        const unsigned cores = std::thread::hardware_concurrency();
        std::printf("Scaling: %s (%u routers, requested >= %u), "
                    "shards {", spec.c_str(), nodes, routers);
        for (std::size_t i = 0; i < shardCounts.size(); ++i)
            std::printf("%s%u", i ? "," : "", shardCounts[i]);
        std::printf("}, host cores %u\n", cores);
        if (cores <= 1)
            std::printf("NOTE: single-core host — shard speedups are "
                        "unmeasurable here (workers time-slice one "
                        "core); absolute cycles/s and bytes/router "
                        "remain valid.\n");

        std::vector<Cell> cells;
        for (unsigned shards : shardCounts) {
            const auto cfg =
                scalingConfig(spec, seed, shards, warmup, measure);
            const auto t0 = std::chrono::steady_clock::now();
            const auto r = runNetworkExperiment(cfg);
            const auto t1 = std::chrono::steady_clock::now();
            const double secs =
                std::chrono::duration<double>(t1 - t0).count();
            Cell c;
            c.shards = shards;
            c.cyclesPerSec =
                secs > 0 ? static_cast<double>(r.cycles) / secs : 0.0;
            c.digest = networkResultDigest(r);
            c.rssAfter = rssBytes();
            cells.push_back(c);
            std::printf("  shards=%u: %.0f cycles/s, digest %016llx\n",
                        shards, c.cyclesPerSec,
                        static_cast<unsigned long long>(c.digest));
        }

        Table t({"shards", "cycles_per_sec", "speedup_vs_serial",
                 "bytes_per_router", "digest"});
        const double serial = cells.front().cyclesPerSec;
        for (const Cell &c : cells) {
            char digest[20];
            std::snprintf(digest, sizeof(digest), "%016llx",
                          static_cast<unsigned long long>(c.digest));
            const double speedup =
                serial > 0 ? c.cyclesPerSec / serial : 0.0;
            t.addRow({std::to_string(c.shards),
                      Table::num(c.cyclesPerSec, 0),
                      cores <= 1 ? "n/a(1-core)"
                                 : Table::num(speedup, 2),
                      std::to_string(c.rssAfter / nodes), digest});
        }
        t.print(std::cout);
        t.printCsv(std::cout, "scaling");
        t.printJson(std::cout, "scaling");

        int failures = 0;
        auto check = [&](bool ok, const char *what) {
            std::printf("shape check: %-58s %s\n", what,
                        ok ? "PASS" : "FAIL");
            if (!ok)
                ++failures;
        };
        check(nodes >= routers,
              "generator reached the requested router count");
        bool digests_equal = true;
        for (const Cell &c : cells)
            digests_equal &= c.digest == cells.front().digest;
        check(digests_equal,
              "digest identical across every shard count");
        return failures == 0 ? 0 : 1;
    });
}
