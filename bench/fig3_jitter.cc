/**
 * @file
 * Figure 3 reproduction — "Jitter vs. Offered Load, 1.24 Gb Link":
 * average jitter in router (flit) cycles for fixed vs biased priority
 * scheduling at 1, 2, 4 and 8 candidates per input port.
 *
 * Setup (§5): 8x8 router, 256 VCs/input port, 1.24 Gb/s links,
 * 128-bit flits, CBR connections from the paper's rate ladder on
 * random port pairs, statistics over ~100,000 flit cycles.
 *
 * Expected shape: biased priorities below fixed at every candidate
 * count, the gap widening with load; more candidates lower jitter.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mmr;
    using namespace mmr::bench;
    return guardedMain([&] {
        Cli cli;
        addSweepFlags(cli);
        if (!cli.parse(argc, argv))
            return 0;
        const auto loads = loadsFromCli(cli);
        const auto opts = sweepOptions(cli);

        const std::vector<Series> series{
            {"biased_1c", SchedulerKind::BiasedPriority, 1},
            {"biased_2c", SchedulerKind::BiasedPriority, 2},
            {"biased_4c", SchedulerKind::BiasedPriority, 4},
            {"biased_8c", SchedulerKind::BiasedPriority, 8},
            {"fixed_1c", SchedulerKind::FixedPriority, 1},
            {"fixed_2c", SchedulerKind::FixedPriority, 2},
            {"fixed_4c", SchedulerKind::FixedPriority, 4},
            {"fixed_8c", SchedulerKind::FixedPriority, 8},
        };

        std::printf("Figure 3: jitter (router cycles) vs offered load, "
                    "fixed and biased priorities\n");
        std::vector<std::vector<ExperimentResult>> results;
        for (const Series &s : series)
            results.push_back(runSweep(s, loads, opts));

        printFigure("fig3_jitter_cycles", series, loads, results,
                    [](const ExperimentResult &r) {
                        return r.meanJitterCycles;
                    });
        if (opts.percentiles)
            printPercentiles("fig3", series, loads, results);

        // Shape assertions from §5.2: biased <= fixed per candidate
        // count where the schemes diverge — "the differences are
        // particularly pronounced in the region just prior to
        // saturation"; at light load the curves coincide, so the
        // check starts at 50% and allows measurement noise.
        int violations = 0;
        for (std::size_t li = 0; li < loads.size(); ++li) {
            if (loads[li] < 0.5 || loads[li] > 0.9)
                continue;
            for (int c = 2; c < 4; ++c) { // 4C and 8C pairs
                const double biased =
                    results[c][li].meanJitterCycles;
                const double fixed = results[c + 4][li].meanJitterCycles;
                if (biased > 1.1 * fixed + 0.05) {
                    ++violations;
                    std::printf("shape violation: biased jitter %.3f > "
                                "fixed %.3f at load %.2f (%uC)\n",
                                biased, fixed, loads[li],
                                series[c].candidates);
                }
            }
        }
        std::printf("shape check (biased <= fixed, 4C/8C, mid loads): "
                    "%s\n", violations == 0 ? "PASS" : "FAIL");
        return violations == 0 ? 0 : 2;
    });
}
