/**
 * @file
 * Network-scale extension of the §5 study: the single-router
 * experiment shows the scheduler's behavior in isolation; here whole
 * MMR networks (a 3x3 mesh and a 12-switch irregular LAN) carry CBR
 * load end to end, with per-hop link/switch scheduling, credit flow
 * control between routers, and EPB-established paths.  Reported:
 * end-to-end delay and jitter versus offered load for the biased and
 * fixed priority schemes.
 */

#include <memory>

#include "bench_common.hh"
#include "network/interface.hh"
#include "network/network.hh"
#include "sim/kernel.hh"

namespace
{

using namespace mmr;

struct NetPoint
{
    double load = 0.0;   ///< achieved fraction of bisection-ish demand
    double delay = 0.0;  ///< mean end-to-end delay (cycles)
    double jitter = 0.0; ///< mean end-to-end jitter (cycles)
    unsigned streams = 0;
    std::uint64_t backlog = 0;
};

NetPoint
runPoint(const Topology &topo, SchedulerKind kind, double load,
         std::uint64_t seed, Cycle warmup, Cycle measure)
{
    NetworkConfig cfg;
    cfg.router.vcsPerPort = 64;
    cfg.router.candidates = 8;
    cfg.router.scheduler = kind;
    cfg.seed = seed;
    Network net(topo, cfg);
    Kernel kernel;
    kernel.add(&net);

    Rng rng(seed * 77 + 1);
    std::vector<std::unique_ptr<NetworkInterface>> hosts;
    for (NodeId n = 0; n < topo.numNodes(); ++n)
        hosts.push_back(
            std::make_unique<NetworkInterface>(net, n, seed + n));

    // Offered load is defined against the host links: each host
    // injects CBR streams to random destinations until its share of
    // the NI link reaches the target.
    const double link = cfg.router.linkRateBps;
    NetPoint point;
    double admitted = 0.0;
    for (NodeId n = 0; n < topo.numNodes(); ++n) {
        double local = 0.0;
        unsigned failures = 0;
        while (local < load * link && failures < 32) {
            std::vector<double> fitting;
            for (double r : paperRateLadder())
                if (local + r <= load * link * 1.02)
                    fitting.push_back(r);
            if (fitting.empty())
                break;
            const double rate = rng.pick(fitting);
            NodeId dst;
            do {
                dst = static_cast<NodeId>(rng.below(topo.numNodes()));
            } while (dst == n);
            if (hosts[n]->openCbrStream(dst, rate)) {
                local += rate;
                failures = 0;
            } else {
                ++failures;
            }
        }
        admitted += local;
        point.streams += hosts[n]->establishedStreams();
    }
    point.load = admitted / (link * topo.numNodes());

    net.endToEnd().startMeasurement(warmup);
    for (Cycle t = 0; t < warmup + measure; ++t) {
        for (auto &h : hosts)
            h->tick(kernel.now());
        kernel.step();
    }
    point.delay = net.endToEnd().meanDelayCycles();
    point.jitter = net.endToEnd().meanJitterCycles();
    for (auto &h : hosts)
        point.backlog += h->backloggedFlits();
    return point;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mmr;
    using namespace mmr::bench;
    return guardedMain([&] {
        Cli cli;
        cli.flag("measure", "40000", "measured flit cycles per point");
        cli.flag("warmup", "8000", "warm-up flit cycles per point");
        cli.flag("seed", "19", "workload seed");
        if (!cli.parse(argc, argv))
            return 0;
        const auto warmup = static_cast<Cycle>(cli.integer("warmup"));
        const auto measure = static_cast<Cycle>(cli.integer("measure"));
        const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));

        const std::vector<double> loads{0.2, 0.4, 0.6, 0.8};
        Rng trng(seed);
        struct NetDef
        {
            std::string name;
            Topology topo;
        };
        const std::vector<NetDef> nets{
            {"mesh3x3", Topology::mesh2d(3, 3)},
            {"irregular12", Topology::irregular(12, 6, 4, trng)},
        };

        int failures = 0;
        for (const NetDef &nd : nets) {
            std::printf("Network load sweep on %s (%u switches, %u "
                        "links)\n", nd.name.c_str(), nd.topo.numNodes(),
                        nd.topo.numLinks());
            Table t({"offered_load", "achieved", "streams",
                     "delay_biased", "jitter_biased", "delay_fixed",
                     "jitter_fixed"});
            for (double load : loads) {
                const NetPoint b =
                    runPoint(nd.topo, SchedulerKind::BiasedPriority,
                             load, seed, warmup, measure);
                const NetPoint f =
                    runPoint(nd.topo, SchedulerKind::FixedPriority,
                             load, seed, warmup, measure);
                std::fprintf(stderr, "  %s load %.1f done\n",
                             nd.name.c_str(), load);
                t.addRow({Table::num(load, 2), Table::num(b.load, 3),
                          std::to_string(b.streams),
                          Table::num(b.delay, 2),
                          Table::num(b.jitter, 3),
                          Table::num(f.delay, 2),
                          Table::num(f.jitter, 3)});
                // End-to-end, the biased scheme keeps its edge.
                if (load >= 0.6 && b.delay > f.delay * 1.2)
                    ++failures;
            }
            t.print(std::cout);
            t.printCsv(std::cout, "network_load_" + nd.name);
        }
        std::printf("shape check (biased delay <= ~fixed end-to-end at "
                    "high load): %s\n",
                    failures == 0 ? "PASS" : "FAIL");
        return failures == 0 ? 0 : 2;
    });
}
