/**
 * @file
 * §3.2 ablation A5 — virtual channel memory organization: "the number
 * of memory modules and flit size must be selected to balance memory
 * access time, link speed, and crossbar switching delay".  For a grid
 * of bank counts and flit sizes, the bench reports the sustainable
 * per-link bandwidth of the interleaved buffer memory and the minimum
 * bank count for the paper's link rates.
 */

#include <cstdio>
#include <iostream>

#include "base/cli.hh"
#include "base/table.hh"
#include "bench_common.hh"
#include "router/vc_memory.hh"

int
main(int argc, char **argv)
{
    using namespace mmr;
    using namespace mmr::bench;
    return guardedMain([&] {
        Cli cli;
        cli.flag("access_ns", "6.0", "RAM module access time");
        cli.flag("word_bits", "32", "internal datapath width");
        if (!cli.parse(argc, argv))
            return 0;
        const double access = cli.real("access_ns");
        const auto word = static_cast<unsigned>(cli.integer("word_bits"));

        std::printf("Claim A5: VC memory bank interleaving vs "
                    "sustainable link rate (%.1f ns RAM, %u-bit "
                    "words)\n", access, word);

        Table t({"banks", "flit_128_gbps", "flit_256_gbps",
                 "flit_512_gbps", "sustains_1.24G_128b"});
        int failures = 0;
        double prev = 0.0;
        for (unsigned banks : {1u, 2u, 4u, 8u, 16u, 32u}) {
            VcMemoryModel m{banks, word, access, 1};
            const double g128 = m.sustainableRateBps(128) / kGbps;
            const double g256 = m.sustainableRateBps(256) / kGbps;
            const double g512 = m.sustainableRateBps(512) / kGbps;
            t.addRow({std::to_string(banks), Table::num(g128, 3),
                      Table::num(g256, 3), Table::num(g512, 3),
                      m.matchesLink(128, 1.24 * kGbps) ? "yes" : "no"});
            if (g128 + 1e-9 < prev)
                ++failures; // bandwidth must be monotone in banks
            prev = g128;
        }
        t.print(std::cout);
        t.printCsv(std::cout, "vc_memory_bandwidth");

        Table t2({"link_gbps", "flit_bits", "min_banks_1port",
                  "min_banks_2port"});
        for (double gbps : {0.155, 0.622, 1.24, 2.0}) {
            for (unsigned flit : {128u, 256u}) {
                t2.addRow({Table::num(gbps, 3), std::to_string(flit),
                           std::to_string(VcMemoryModel::minBanksFor(
                               gbps * kGbps, flit, word, access, 1)),
                           std::to_string(VcMemoryModel::minBanksFor(
                               gbps * kGbps, flit, word, access, 2))});
            }
        }
        t2.print(std::cout);
        t2.printCsv(std::cout, "vc_memory_min_banks");

        // The §5 design point must be buildable with a small bank
        // count (single-chip feasibility).
        const unsigned need =
            VcMemoryModel::minBanksFor(1.24 * kGbps, 128, word, access);
        if (need > 8)
            ++failures;
        std::printf("shape check (<=8 banks sustain the 1.24 Gb/s "
                    "design point; bandwidth monotone in banks): %s\n",
                    failures == 0 ? "PASS" : "FAIL");
        return failures == 0 ? 0 : 2;
    });
}
