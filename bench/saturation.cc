/**
 * @file
 * Saturation throughput — "Saturation does not appear to occur before
 * 95% load" (§5.2, for the well-provisioned configurations).  For
 * each scheduler/candidate configuration this bench sweeps offered
 * load upward and reports the highest load the router carries with
 * bounded delay, exposing the 1-candidate ~63% matching bound and the
 * growth toward the paper's 95% claim.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mmr;
    using namespace mmr::bench;
    return guardedMain([&] {
        Cli cli;
        addSweepFlags(cli);
        cli.flag("delay_limit_us", "20",
                 "delay above this counts as saturated");
        if (!cli.parse(argc, argv))
            return 0;
        auto opts = sweepOptions(cli);
        const double limit = cli.real("delay_limit_us");

        const std::vector<double> loads{0.50, 0.60, 0.70, 0.80,
                                        0.85, 0.90, 0.95};
        struct Config
        {
            std::string label;
            SchedulerKind kind;
            unsigned candidates;
        };
        const std::vector<Config> configs{
            {"biased_1c", SchedulerKind::BiasedPriority, 1},
            {"biased_2c", SchedulerKind::BiasedPriority, 2},
            {"biased_4c", SchedulerKind::BiasedPriority, 4},
            {"biased_8c", SchedulerKind::BiasedPriority, 8},
            {"autonet_8c", SchedulerKind::Autonet, 8},
        };

        std::printf("Saturation sweep (delay limit %.0f us)\n", limit);
        Table t({"config", "max_stable_load", "carried_at_max",
                 "delay_us_at_max"});
        std::vector<double> max_loads;
        for (const Config &c : configs) {
            double best_load = 0.0, best_carried = 0.0, best_delay = 0.0;
            for (double load : loads) {
                ExperimentConfig cfg;
                cfg.router.scheduler = c.kind;
                cfg.router.candidates = c.candidates;
                cfg.offeredLoad = load;
                cfg.warmupCycles = opts.warmupCycles;
                cfg.measureCycles = opts.measureCycles;
                cfg.seed = opts.seed;
                const ExperimentResult r = runSingleRouter(cfg);
                std::fprintf(stderr, "  %-10s load %.2f -> %.2f us\n",
                             c.label.c_str(), load, r.meanDelayUs);
                const bool stable =
                    r.meanDelayUs <= limit &&
                    r.utilization + 0.02 >= r.achievedLoad;
                if (stable && load > best_load) {
                    best_load = load;
                    best_carried = r.utilization;
                    best_delay = r.meanDelayUs;
                }
            }
            max_loads.push_back(best_load);
            t.addRow({c.label, Table::num(best_load, 2),
                      Table::num(best_carried, 3),
                      Table::num(best_delay)});
        }
        t.print(std::cout);
        t.printCsv(std::cout, "saturation");

        int failures = 0;
        // More candidates never saturate earlier.
        for (std::size_t i = 1; i < 4; ++i)
            if (max_loads[i] + 1e-9 < max_loads[i - 1])
                ++failures;
        // The paper's claim: the 8-candidate biased configuration is
        // stable through the top of the sweep (95%).
        if (max_loads[3] < 0.95 - 1e-9)
            ++failures;
        // And a single candidate saturates far earlier (the classical
        // single-iteration matching bound).
        if (max_loads[0] > 0.70 + 1e-9)
            ++failures;
        std::printf("shape check (8C stable to 95%%; 1C saturates "
                    "early; monotone in candidates): %s\n",
                    failures == 0 ? "PASS" : "FAIL");
        return failures == 0 ? 0 : 2;
    });
}
