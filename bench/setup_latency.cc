/**
 * @file
 * Timed connection establishment — measured setup latency of the
 * distributed probe/ack protocol (§3.4/§3.5) as network occupancy
 * grows, EPB vs greedy.  Unlike the network_epb bench (which uses the
 * instantaneous reservation walk and a latency *model*), every point
 * here is produced by probes travelling hop by hop in simulated time,
 * contending with each other for VCs and bandwidth.
 */

#include <memory>

#include "bench_common.hh"
#include "network/network.hh"
#include "sim/kernel.hh"

namespace
{

using namespace mmr;

struct Sample
{
    unsigned offered = 0;
    unsigned accepted = 0;
    StreamStat setupCycles;
    StreamStat backtracks;
};

std::vector<Sample>
timedSweep(SetupPolicy policy, unsigned total, unsigned batch,
           std::uint64_t seed)
{
    Rng rng(seed);
    const Topology topo = Topology::irregular(16, 8, 4, rng);
    NetworkConfig cfg;
    cfg.router.vcsPerPort = 64;
    cfg.probeHopCycles = 2.0;
    cfg.seed = seed;
    Network net(topo, cfg);
    Kernel kernel;
    kernel.add(&net);

    std::vector<Sample> samples;
    Sample cur;
    for (unsigned i = 0; i < total; ++i) {
        const NodeId src = static_cast<NodeId>(rng.below(16));
        NodeId dst;
        do {
            dst = static_cast<NodeId>(rng.below(16));
        } while (dst == src);
        const double rate = rng.pick(paperRateLadder());
        const auto token =
            net.openCbrTimed(src, dst, rate, kernel.now(), policy);
        // Drive the clock until the probe resolves.
        const Network::TimedOutcome *r = nullptr;
        for (Cycle c = 0; c < 50000 && r == nullptr; ++c) {
            kernel.step();
            r = net.timedResult(token);
        }
        mmr_assert(r != nullptr, "probe never completed");
        ++cur.offered;
        if (r->accepted) {
            ++cur.accepted;
            cur.setupCycles.add(static_cast<double>(r->setupCycles));
            cur.backtracks.add(static_cast<double>(r->backtrackSteps));
        }
        if (cur.offered % batch == 0) {
            samples.push_back(cur);
            cur.setupCycles.reset();
            cur.backtracks.reset();
        }
    }
    return samples;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mmr;
    using namespace mmr::bench;
    return guardedMain([&] {
        Cli cli;
        cli.flag("demand", "500", "total connection requests");
        cli.flag("batch", "100", "report granularity");
        cli.flag("seed", "11", "topology/workload seed");
        if (!cli.parse(argc, argv))
            return 0;
        const auto demand = static_cast<unsigned>(cli.integer("demand"));
        const auto batch = static_cast<unsigned>(cli.integer("batch"));
        const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));

        std::printf("Measured setup latency of the probe/ack protocol, "
                    "16-node irregular LAN (hop cost 2 cycles)\n");

        const auto epb =
            timedSweep(SetupPolicy::Epb, demand, batch, seed);
        const auto greedy =
            timedSweep(SetupPolicy::Greedy, demand, batch, seed);

        Table t({"offered", "accept_epb", "accept_greedy",
                 "setup_mean_epb", "setup_max_epb", "backtracks_mean",
                 "setup_mean_greedy"});
        for (std::size_t i = 0; i < epb.size(); ++i) {
            t.addRow({std::to_string(epb[i].offered),
                      Table::num(static_cast<double>(epb[i].accepted) /
                                     epb[i].offered, 3),
                      Table::num(static_cast<double>(
                                     greedy[i].accepted) /
                                     greedy[i].offered, 3),
                      Table::num(epb[i].setupCycles.mean(), 1),
                      Table::num(epb[i].setupCycles.max(), 0),
                      Table::num(epb[i].backtracks.mean(), 3),
                      Table::num(greedy[i].setupCycles.mean(), 1)});
        }
        t.print(std::cout);
        t.printCsv(std::cout, "timed_setup_latency");

        int failures = 0;
        // Setup latency is in the tens of flit cycles — microseconds
        // at the paper's 103 ns cycle, far below a LAN connection's
        // lifetime, which is the premise of connection-oriented PCS.
        for (const auto &s : epb) {
            if (s.accepted > 0 && s.setupCycles.mean() > 500.0)
                ++failures;
        }
        // EPB never accepts less than greedy on the same demand.
        for (std::size_t i = 0; i < epb.size(); ++i)
            if (epb[i].accepted + 1 < greedy[i].accepted)
                ++failures;
        std::printf("shape check (setup in tens of cycles; EPB >= "
                    "greedy acceptance): %s\n",
                    failures == 0 ? "PASS" : "FAIL");
        return failures == 0 ? 0 : 2;
    });
}
