/**
 * @file
 * Irregular LAN / cluster scenario (§1, §3.5): an irregular
 * switch-based network of the kind the MMR targets.  Connections are
 * established with EPB backtracking probes; best-effort packets are
 * routed adaptively with up*-down*.  The example prints the topology,
 * the routing structure, the probe work EPB performed, and end-to-end
 * statistics.
 *
 * Run:  ./lan_cluster [--nodes=12] [--extra=5] [--streams=20]
 */

#include <cstdio>
#include <exception>
#include <iostream>
#include <memory>
#include <vector>

#include "base/cli.hh"
#include "base/table.hh"
#include "network/interface.hh"
#include "network/network.hh"
#include "sim/kernel.hh"

int
main(int argc, char **argv)
{
    using namespace mmr;
    try {
        Cli cli;
        cli.flag("nodes", "12", "number of switches in the LAN");
        cli.flag("extra", "5", "cross links beyond the spanning tree");
        cli.flag("degree", "4", "max switch degree");
        cli.flag("streams", "20", "CBR connections to establish");
        cli.flag("cycles", "30000", "simulated flit cycles");
        cli.flag("seed", "3", "random seed");
        if (!cli.parse(argc, argv))
            return 0;

        const auto n = static_cast<unsigned>(cli.integer("nodes"));
        const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
        Rng rng(seed);
        const Topology topo = Topology::irregular(
            n, static_cast<unsigned>(cli.integer("extra")),
            static_cast<unsigned>(cli.integer("degree")), rng);

        std::printf("irregular LAN: %u switches, %u links, max degree "
                    "%u\n", topo.numNodes(), topo.numLinks(),
                    topo.maxDegree());

        NetworkConfig ncfg;
        ncfg.router.vcsPerPort = 64;
        ncfg.router.candidates = 8;
        ncfg.seed = seed;
        Network net(topo, ncfg);
        Kernel kernel;
        kernel.add(&net);

        // Show the up*-down* structure the best-effort routing uses.
        std::printf("up*-down* levels:");
        for (NodeId i = 0; i < topo.numNodes(); ++i)
            std::printf(" %u:%u", i, net.updown().level(i));
        std::printf("\n\n");

        // Establish random CBR streams with EPB; compare the probe
        // work against the greedy baseline on the same demand.
        const auto streams =
            static_cast<unsigned>(cli.integer("streams"));
        unsigned accepted = 0, backtracks = 0, forwards = 0;
        std::vector<std::unique_ptr<NetworkInterface>> hosts;
        for (NodeId i = 0; i < topo.numNodes(); ++i)
            hosts.push_back(
                std::make_unique<NetworkInterface>(net, i, seed + i));

        std::vector<ConnId> conns;
        for (unsigned s = 0; s < streams; ++s) {
            const NodeId src = static_cast<NodeId>(rng.below(n));
            NodeId dst;
            do {
                dst = static_cast<NodeId>(rng.below(n));
            } while (dst == src);
            // All demo streams run at 20 Mb/s: one flit per 62 cycles,
            // matching the injection loop below so the per-round
            // reservation is neither exceeded nor wasted.
            const auto o = net.openCbr(src, dst, 20 * kMbps);
            if (o.accepted) {
                ++accepted;
                forwards += o.forwardSteps;
                backtracks += o.backtrackSteps;
                conns.push_back(o.id);
            }
        }
        std::printf("EPB established %u/%u streams (probe steps: %u "
                    "forward, %u backtrack)\n\n", accepted, streams,
                    forwards, backtracks);

        // Drive data: one flit per connection every 40 cycles plus a
        // light best-effort background from every host.
        for (NodeId i = 0; i < topo.numNodes(); ++i)
            hosts[i]->addBestEffortFlow((i + 1) % n, 2 * kMbps);

        const auto horizon = static_cast<Cycle>(cli.integer("cycles"));
        net.endToEnd().startMeasurement(horizon / 10);
        std::vector<std::uint32_t> seq(conns.size(), 0);
        for (Cycle t = 0; t < horizon; ++t) {
            if (t % 62 == 0) {
                for (std::size_t k = 0; k < conns.size(); ++k) {
                    Flit f;
                    f.seq = seq[k]++;
                    f.createTime = kernel.now();
                    net.inject(conns[k], f, kernel.now());
                }
            }
            for (auto &h : hosts)
                h->tick(kernel.now());
            kernel.step();
        }

        Table t({"metric", "value"});
        t.addRow({"stream flits delivered",
                  std::to_string(net.flitsDelivered() -
                                 net.datagramsDelivered())});
        t.addRow({"datagrams delivered",
                  std::to_string(net.datagramsDelivered()) + "/" +
                      std::to_string(net.datagramsSent())});
        t.addRow({"mean end-to-end delay (cycles)",
                  Table::num(net.endToEnd().meanDelayCycles(), 2)});
        t.addRow({"mean end-to-end jitter (cycles)",
                  Table::num(net.endToEnd().meanJitterCycles(), 2)});
        t.addRow({"datagram drops", std::to_string(net.datagramDrops())});
        t.print(std::cout);
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
