/**
 * @file
 * Video-on-demand server scenario (the paper's motivating workload,
 * §1-§2): a server node streams MPEG-like VBR video to many clients
 * across a small cluster network while the clients exchange
 * best-effort traffic.  Demonstrates VBR admission with permanent +
 * peak bandwidth, the concurrency factor, per-priority scheduling,
 * and QoS isolation of the streams from the datagram background.
 *
 * Run:  ./video_server [--clients=6] [--mbps=4] [--seconds=0.02]
 */

#include <cstdio>
#include <exception>
#include <iostream>
#include <memory>
#include <vector>

#include "base/cli.hh"
#include "base/table.hh"
#include "network/interface.hh"
#include "network/network.hh"
#include "sim/kernel.hh"

int
main(int argc, char **argv)
{
    using namespace mmr;
    try {
        Cli cli;
        cli.flag("clients", "6", "number of video clients");
        cli.flag("mbps", "4", "mean video rate per stream (Mb/s)");
        cli.flag("peak", "3.0", "declared peak/mean ratio");
        cli.flag("seconds", "0.02", "simulated seconds");
        cli.flag("seed", "7", "random seed");
        cli.flag("trace", "",
                 "frame-size trace to replay (bits per line); empty = "
                 "synthetic GOP model");
        if (!cli.parse(argc, argv))
            return 0;

        const auto clients =
            static_cast<unsigned>(cli.integer("clients"));
        const double mean_bps = cli.real("mbps") * kMbps;
        const double seconds = cli.real("seconds");

        // A 3x3 mesh cluster; the server sits in the middle.
        const Topology topo = Topology::mesh2d(3, 3);
        const NodeId server = 4;
        NetworkConfig ncfg;
        ncfg.router.vcsPerPort = 64;
        ncfg.router.candidates = 8;
        ncfg.seed = static_cast<std::uint64_t>(cli.integer("seed"));
        Network net(topo, ncfg);
        Kernel kernel;
        kernel.add(&net);

        const double cycles_per_second =
            ncfg.router.linkRateBps / ncfg.router.flitBits;
        const auto horizon =
            static_cast<Cycle>(seconds * cycles_per_second);

        std::printf("video server at node %u, %u clients, %.1f Mb/s "
                    "mean (peak x%.1f), %.0f cycles (%.0f us)\n",
                    server, clients, mean_bps / kMbps, cli.real("peak"),
                    static_cast<double>(horizon),
                    horizon * ncfg.router.flitCycleNanos() / 1000.0);

        // The server's interface opens one VBR stream per client, with
        // a priority reflecting the service class the client bought.
        NetworkInterface server_ni(net, server, ncfg.seed);
        VbrProfile prof;
        prof.meanRateBps = mean_bps;
        prof.peakToMean = cli.real("peak");
        prof.framesPerSecond = 500.0; // fast frame clock for the demo
        const std::string trace = cli.str("trace");
        unsigned established = 0;
        for (unsigned c = 0; c < clients; ++c) {
            const NodeId client = (server + 1 + c) % topo.numNodes();
            const int priority = static_cast<int>(c % 3);
            const bool ok =
                trace.empty()
                    ? server_ni.openVbrStream(client, prof, priority)
                    : server_ni.openTraceStream(
                          client, trace, prof.framesPerSecond,
                          prof.peakToMean, priority);
            if (ok)
                ++established;
        }
        if (!trace.empty())
            std::printf("replaying frame trace '%s'\n", trace.c_str());
        std::printf("established %u/%u VBR streams (admission refused "
                    "%u)\n", established, clients,
                    server_ni.refusedStreams());

        // Clients chatter with best-effort datagrams in the background.
        std::vector<std::unique_ptr<NetworkInterface>> client_nis;
        for (NodeId n = 0; n < topo.numNodes(); ++n) {
            if (n == server)
                continue;
            client_nis.push_back(std::make_unique<NetworkInterface>(
                net, n, ncfg.seed + n + 1));
            client_nis.back()->addBestEffortFlow((n + 3) % 9, 10 * kMbps);
        }

        net.endToEnd().startMeasurement(horizon / 10);
        for (Cycle t = 0; t < horizon; ++t) {
            server_ni.tick(kernel.now());
            for (auto &ni : client_nis)
                ni->tick(kernel.now());
            kernel.step();
        }

        // Report per-stream QoS.
        Table t({"stream", "flits", "mean_e2e_cycles", "p-to-p jitter",
                 "path_len"});
        for (ConnId conn : server_ni.connections()) {
            const ConnectionRecorder *rec =
                net.endToEnd().connection(conn);
            if (rec == nullptr)
                continue;
            t.addRow({std::to_string(conn),
                      std::to_string(rec->delay().count()),
                      Table::num(rec->delay().mean(), 1),
                      Table::num(rec->jitter().mean(), 2),
                      std::to_string(net.connectionPath(conn).size())});
        }
        t.print(std::cout);
        std::printf("background datagrams: %llu sent, %llu delivered\n",
                    static_cast<unsigned long long>(net.datagramsSent()),
                    static_cast<unsigned long long>(
                        net.datagramsDelivered()));
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
