/**
 * @file
 * Trace generator: writes a synthetic MPEG-like frame-size trace (one
 * frame size in bits per line) from the GOP model, for use with
 * `video_server --trace=...` or the TraceVbrSource API.  Real
 * recorded traces in the same format can be substituted directly.
 *
 * Run:  ./make_trace --out=video.trace --mbps=4 --frames=2000
 */

#include <cstdio>
#include <exception>

#include "base/cli.hh"
#include "base/rng.hh"
#include "traffic/trace_source.hh"

int
main(int argc, char **argv)
{
    using namespace mmr;
    try {
        Cli cli;
        cli.flag("out", "video.trace", "output file");
        cli.flag("mbps", "4", "mean rate (Mb/s)");
        cli.flag("fps", "25", "frames per second");
        cli.flag("frames", "2000", "number of frames");
        cli.flag("gop", "IBBPBBPBBPBB", "GOP pattern (I/P/B)");
        cli.flag("sigma", "0.25", "lognormal frame-size variability");
        cli.flag("seed", "1", "random seed");
        if (!cli.parse(argc, argv))
            return 0;

        VbrProfile prof;
        prof.meanRateBps = cli.real("mbps") * kMbps;
        prof.framesPerSecond = cli.real("fps");
        prof.gopPattern = cli.str("gop");
        prof.sigma = cli.real("sigma");
        Rng rng(static_cast<std::uint64_t>(cli.integer("seed")));

        const auto frames =
            static_cast<unsigned>(cli.integer("frames"));
        const std::string out = cli.str("out");
        writeSyntheticTrace(out, prof, frames, rng);

        // Round-trip sanity: reload and report the realized rate.
        const auto trace = loadFrameTrace(out);
        double total = 0.0;
        std::uint64_t biggest = 0;
        for (auto bits : trace) {
            total += static_cast<double>(bits);
            biggest = std::max(biggest, bits);
        }
        const double mean_bps =
            total / static_cast<double>(trace.size()) *
            prof.framesPerSecond;
        std::printf("wrote %s: %zu frames, %.2f Mb/s mean, largest "
                    "frame %.1f kbit\n", out.c_str(), trace.size(),
                    mean_bps / kMbps, biggest / 1000.0);
        std::printf("replay with: ./video_server --trace=%s\n",
                    out.c_str());
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
