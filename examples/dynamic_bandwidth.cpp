/**
 * @file
 * Dynamic bandwidth management (§4.3): "using control words along a
 * connection we can dynamically vary the bandwidth requirements of a
 * connection ... initiated by the source interface in response to
 * external (CPU initiated) events or in response to actual
 * performance experienced on a connection."
 *
 * An adaptive video source starts at a low rate, observes its own
 * end-to-end latency, renegotiates upward while the network has head
 * room, and is throttled back by admission control when a competing
 * connection claims the remaining bandwidth.  Also demonstrates
 * dynamic VBR priority changes and the Myrinet-style control-word
 * encoding used on the wire.
 *
 * Run:  ./dynamic_bandwidth
 */

#include <cstdio>
#include <exception>
#include <iostream>

#include "base/cli.hh"
#include "base/table.hh"
#include "network/network.hh"
#include "router/flow_control.hh"
#include "sim/kernel.hh"

int
main(int argc, char **argv)
{
    using namespace mmr;
    try {
        Cli cli;
        cli.flag("seed", "9", "random seed");
        if (!cli.parse(argc, argv))
            return 0;

        const Topology topo = Topology::ring(4);
        NetworkConfig ncfg;
        ncfg.router.vcsPerPort = 32;
        ncfg.seed = static_cast<std::uint64_t>(cli.integer("seed"));
        Network net(topo, ncfg);
        Kernel kernel;
        kernel.add(&net);

        // The adaptive connection: starts at 100 Mb/s.
        const auto video = net.openCbr(0, 2, 100 * kMbps);
        if (!video.accepted) {
            std::fprintf(stderr, "setup failed\n");
            return 1;
        }
        std::printf("adaptive stream %u established (path length %u)\n",
                    video.id, video.pathLength);

        Table t({"event", "requested_mbps", "outcome",
                 "alloc_cycles@hop0"});
        auto alloc_now = [&] {
            const NodeId first = net.connectionPath(video.id).front();
            return net.routerAt(first).connection(video.id)->allocCycles;
        };

        // Step upward while there is head room — the interface would
        // send SetBandwidth control words; we show the actual 64-bit
        // encodings that would ride the link.
        for (double mbps : {200.0, 400.0, 800.0}) {
            ControlWord w;
            w.op = ControlOp::SetBandwidth;
            w.conn = video.id;
            w.arg = mbps;
            const bool ok =
                net.renegotiateBandwidth(video.id, mbps * kMbps);
            std::printf("control word 0x%016llx (SetBandwidth %.0f "
                        "Mb/s) -> %s\n",
                        static_cast<unsigned long long>(w.encode()),
                        mbps, ok ? "granted" : "refused");
            t.addRow({"scale up", Table::num(mbps, 0),
                      ok ? "granted" : "refused",
                      std::to_string(alloc_now())});
        }

        // A competitor appears on the video's own path and takes a
        // slice; scaling further must now fail, and the source backs
        // off.
        const NodeId mid = net.connectionPath(video.id)[1];
        const auto rival = net.openCbr(mid, 2, 300 * kMbps);
        std::printf("rival stream (300 Mb/s from node %u, sharing the "
                    "video's second hop) %s\n", mid,
                    rival.accepted ? "admitted" : "refused");

        const bool up_again =
            net.renegotiateBandwidth(video.id, 1.1 * kGbps);
        t.addRow({"scale up vs rival", "1100",
                  up_again ? "granted" : "refused",
                  std::to_string(alloc_now())});

        const bool back_off =
            net.renegotiateBandwidth(video.id, 300 * kMbps);
        t.addRow({"back off", "300", back_off ? "granted" : "refused",
                  std::to_string(alloc_now())});

        t.print(std::cout);

        // Drive some traffic at the final rate to show the stream is
        // healthy after all the renegotiation.
        net.endToEnd().startMeasurement(0);
        std::uint32_t seq = 0;
        for (Cycle t2 = 0; t2 < 5000; ++t2) {
            if (t2 % 5 == 0) { // ~250 Mb/s worth of flits
                Flit f;
                f.seq = seq++;
                f.createTime = kernel.now();
                net.inject(video.id, f, kernel.now());
            }
            kernel.step();
        }
        const ConnectionRecorder *rec =
            net.endToEnd().connection(video.id);
        std::printf("after renegotiation: %llu flits delivered, mean "
                    "e2e delay %.1f cycles, jitter %.2f cycles\n",
                    static_cast<unsigned long long>(
                        rec ? rec->delay().count() : 0),
                    rec ? rec->delay().mean() : 0.0,
                    rec ? rec->jitter().mean() : 0.0);

        // Dynamic VBR priority via control words.
        const auto vbr = net.openVbr(3, 1, 5 * kMbps, 20 * kMbps, 0);
        if (vbr.accepted) {
            ControlWord w;
            w.op = ControlOp::SetPriority;
            w.conn = vbr.id;
            w.arg = 7.0;
            net.setConnectionPriority(vbr.id, 7);
            std::printf("VBR priority raised to 7 via control word "
                        "0x%016llx\n",
                        static_cast<unsigned long long>(w.encode()));
        }
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
