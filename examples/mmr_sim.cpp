/**
 * @file
 * mmr_sim — the general config-driven simulator front end.
 *
 * Exposes the full §2 design space from the command line, in two
 * modes:
 *
 *   --mode=router   the §5 single-router study with arbitrary knobs
 *                   (ports, VCs, K, candidates, scheduler, traffic
 *                   mix, late-frame aborts, automatic warm-up);
 *   --mode=network  an end-to-end network of MMRs (mesh/torus/ring/
 *                   irregular), CBR load via EPB-established paths
 *                   plus best-effort background, optional link
 *                   failure injection mid-run.
 *
 * Examples:
 *   ./mmr_sim --mode=router --load=0.9 --sched=biased --candidates=8
 *   ./mmr_sim --mode=router --vbr=0.5 --be=0.2 --abort-late=true
 *   ./mmr_sim --mode=network --topology=mesh4x4 --load=0.5 \
 *             --fail-link=5,6
 */

#include <chrono>
#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>

#include "base/cli.hh"
#include "base/table.hh"
#include "harness/single_router.hh"
#include "network/interface.hh"
#include "network/network.hh"
#include "obs/obs_config.hh"
#include "obs/profiler.hh"
#include "sim/kernel.hh"
#include "sim/sweep.hh"

namespace
{

using namespace mmr;

/** Write --profile-json and, when asked, print the profile summary. */
void
reportProfile(const Cli &cli, const SimProfile &prof)
{
    const std::string path = cli.str("profile-json");
    if (!path.empty()) {
        std::ofstream os(path);
        if (!os)
            mmr_fatal("cannot open profile output '", path, "'");
        writeProfileJson(os, prof);
    }
    if (cli.boolean("profile") || !path.empty())
        printProfile(std::cerr, prof);
}

Topology
parseTopology(const std::string &spec, Rng &rng)
{
    if (spec.rfind("mesh", 0) == 0) {
        const auto x = spec.find('x', 4);
        if (x == std::string::npos)
            mmr_fatal("mesh spec must be meshWxH, got '", spec, "'");
        return Topology::mesh2d(std::stoul(spec.substr(4, x - 4)),
                                std::stoul(spec.substr(x + 1)));
    }
    if (spec.rfind("torus", 0) == 0) {
        const auto x = spec.find('x', 5);
        if (x == std::string::npos)
            mmr_fatal("torus spec must be torusWxH, got '", spec, "'");
        return Topology::torus2d(std::stoul(spec.substr(5, x - 5)),
                                 std::stoul(spec.substr(x + 1)));
    }
    if (spec.rfind("ring", 0) == 0)
        return Topology::ring(std::stoul(spec.substr(4)));
    if (spec.rfind("irregular", 0) == 0) {
        const unsigned n = std::stoul(spec.substr(9));
        return Topology::irregular(n, n / 2, 4, rng);
    }
    mmr_fatal("unknown topology '", spec,
              "' (want meshWxH|torusWxH|ringN|irregularN)");
}

/**
 * Several --load values: run the points through the sweep runner on
 * --jobs workers and print one row per load.  Observability outputs
 * get a per-load path suffix so concurrent points never share a file.
 */
int
runRouterSweep(ExperimentConfig base,
               const std::vector<std::string> &loads, unsigned jobs)
{
    std::vector<ExperimentConfig> cfgs;
    cfgs.reserve(loads.size());
    for (const std::string &l : loads) {
        ExperimentConfig cfg = base;
        cfg.offeredLoad = std::stod(l);
        cfg.obs.tracePath = obsPathWithSuffix(cfg.obs.tracePath, l);
        cfg.obs.statsJsonPath =
            obsPathWithSuffix(cfg.obs.statsJsonPath, l);
        cfg.obs.statsCsvPath =
            obsPathWithSuffix(cfg.obs.statsCsvPath, l);
        cfg.obs.vcdPath = obsPathWithSuffix(cfg.obs.vcdPath, l);
        cfgs.push_back(std::move(cfg));
    }
    const auto results = runExperiments(
        cfgs, jobs, [&](std::size_t i, const ExperimentResult &r) {
            std::fprintf(stderr, "  load %s done (%.0f cycles/s)\n",
                         loads[i].c_str(), r.profile.cyclesPerSec());
        });

    Table t({"offered_load", "achieved", "flits", "mean_delay_cyc",
             "p99_cyc", "jitter_cyc", "utilization", "rejects"});
    for (std::size_t i = 0; i < results.size(); ++i) {
        const ExperimentResult &r = results[i];
        t.addRow({Table::num(r.offeredLoad, 2),
                  Table::num(r.achievedLoad, 3),
                  std::to_string(r.flitsDelivered),
                  Table::num(r.meanDelayCycles),
                  Table::num(r.p99DelayCycles, 1),
                  Table::num(r.meanJitterCycles),
                  Table::num(r.utilization, 3),
                  std::to_string(r.injectionRejects)});
    }
    t.print(std::cout);
    t.printCsv(std::cout, "load_sweep");
    return 0;
}

int
runRouterMode(const Cli &cli)
{
    ExperimentConfig cfg;
    cfg.router.numPorts = static_cast<unsigned>(cli.integer("ports"));
    cfg.router.vcsPerPort = static_cast<unsigned>(cli.integer("vcs"));
    cfg.router.linkRateBps = cli.real("gbps") * kGbps;
    cfg.router.flitBits = static_cast<unsigned>(cli.integer("flit"));
    cfg.router.roundFactorK = static_cast<unsigned>(cli.integer("k"));
    cfg.router.candidates =
        static_cast<unsigned>(cli.integer("candidates"));
    cfg.router.scheduler = schedulerKindFromString(cli.str("sched"));
    cfg.router.concurrencyFactor = cli.real("concurrency");
    cfg.router.bestEffortReserve = cli.real("be-reserve");
    cfg.measureCycles = static_cast<Cycle>(cli.integer("cycles"));
    cfg.warmupCycles = static_cast<Cycle>(cli.integer("warmup"));
    cfg.autoWarmup = cli.boolean("auto-warmup");
    cfg.seed = static_cast<std::uint64_t>(cli.integer("seed"));

    const double vbr = cli.real("vbr");
    const double be = cli.real("be");
    if (vbr + be > 1.0)
        mmr_fatal("vbr + be shares exceed 1.0");
    cfg.mix.cbrShare = 1.0 - vbr - be;
    cfg.mix.vbrShare = vbr;
    cfg.mix.beShare = be;
    cfg.mix.abortLateFrames = cli.boolean("abort-late");
    cfg.mix.vbrProfile.framesPerSecond = cli.real("fps");
    cfg.mix.vbrProfile.peakToMean = cli.real("peak");
    cfg.cbrDelayBudget =
        static_cast<Cycle>(cli.integer("cbr-budget"));
    cfg.vbrDelayBudget =
        static_cast<Cycle>(cli.integer("vbr-budget"));
    cfg.forcePanicAt = static_cast<Cycle>(cli.integer("panic-at"));
    cfg.obs = obsConfigFromCli(cli);

    const auto loads = cli.list("load");
    const long jobsFlag = cli.integer("jobs");
    const unsigned jobs =
        jobsFlag == 0 ? defaultJobs()
                      : static_cast<unsigned>(jobsFlag < 1 ? 1
                                                           : jobsFlag);
    if (loads.size() > 1)
        return runRouterSweep(cfg, loads, jobs);
    cfg.offeredLoad = cli.real("load");

    const ExperimentResult r = runSingleRouter(cfg);
    reportProfile(cli, r.profile);
    const double ns = cfg.router.flitCycleNanos();

    Table t({"metric", "value"});
    t.addRow({"scheduler", to_string(cfg.router.scheduler)});
    t.addRow({"candidates", std::to_string(cfg.router.candidates)});
    t.addRow({"connections", std::to_string(r.connections)});
    t.addRow({"achieved load", Table::num(r.achievedLoad, 3)});
    t.addRow({"warm-up used (cycles)", std::to_string(r.warmupUsed)});
    t.addRow({"flits delivered", std::to_string(r.flitsDelivered)});
    t.addRow({"mean delay (cycles / us)",
              Table::num(r.meanDelayCycles) + " / " +
                  Table::num(r.meanDelayUs)});
    t.addRow({"p99 delay (cycles)", Table::num(r.p99DelayCycles, 1)});
    t.addRow({"mean jitter (cycles)", Table::num(r.meanJitterCycles)});
    t.addRow({"switch utilization", Table::num(r.utilization, 3)});
    if (r.cbr.flits)
        t.addRow({"CBR delay (us)",
                  Table::num(r.cbr.delayCycles.mean() * ns / 1000.0)});
    if (r.vbr.flits) {
        t.addRow({"VBR delay (us)",
                  Table::num(r.vbr.delayCycles.mean() * ns / 1000.0)});
        t.addRow({"VBR deadline miss",
                  Table::num(100.0 * r.vbr.deadlineMissRate(), 2) +
                      "%"});
        t.addRow({"aborted flits", std::to_string(r.abortedFlits)});
    }
    if (r.bestEffort.flits)
        t.addRow({"best-effort delay (us)",
                  Table::num(r.bestEffort.delayCycles.mean() * ns /
                             1000.0)});
    t.addRow({"injection rejects", std::to_string(r.injectionRejects)});
    t.print(std::cout);

    if (cli.boolean("percentiles")) {
        Table pt({"stage_or_class", "count", "p50", "p90", "p99",
                  "p999", "max"});
        const auto row = [&](const std::string &name,
                             const LatencySummary &s) {
            if (s.count == 0)
                return;
            pt.addRow({name, std::to_string(s.count),
                       Table::num(s.p50, 0), Table::num(s.p90, 0),
                       Table::num(s.p99, 0), Table::num(s.p999, 0),
                       Table::num(s.maxCycles, 0)});
        };
        for (std::size_t s = 0; s < kNumLatencyStages; ++s)
            row(std::string("stage:") +
                    to_string(static_cast<LatencyStage>(s)),
                r.stageLatency[s]);
        row("class:cbr", r.cbr.latency);
        row("class:vbr", r.vbr.latency);
        row("class:best_effort", r.bestEffort.latency);
        pt.print(std::cout);
        pt.printCsv(std::cout, "latency_percentiles");

        if (cfg.cbrDelayBudget || cfg.vbrDelayBudget) {
            Table qt({"class", "budget_cyc", "flits", "violations",
                      "violation_rate", "worst_excess_cyc"});
            const auto qrow = [&](const char *name, Cycle budget,
                                  const QosCounters &q) {
                if (budget == 0)
                    return;
                qt.addRow({name, Table::num(budget, 0),
                           std::to_string(q.flits),
                           std::to_string(q.violations),
                           Table::num(q.violationRate(), 4),
                           Table::num(q.worstExcessCycles, 0)});
            };
            qrow("cbr", cfg.cbrDelayBudget, r.cbr.qos);
            qrow("vbr", cfg.vbrDelayBudget, r.vbr.qos);
            qt.print(std::cout);
            qt.printCsv(std::cout, "qos_deadlines");
        }
    }
    return 0;
}

int
runNetworkMode(const Cli &cli)
{
    const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
    Rng rng(seed);
    const Topology topo = parseTopology(cli.str("topology"), rng);

    NetworkConfig ncfg;
    ncfg.router.vcsPerPort = static_cast<unsigned>(cli.integer("vcs"));
    ncfg.router.candidates =
        static_cast<unsigned>(cli.integer("candidates"));
    ncfg.router.scheduler = schedulerKindFromString(cli.str("sched"));
    ncfg.seed = seed;
    Network net(topo, ncfg);
    Kernel kernel;
    kernel.add(&net, "network");

    const ObsConfig ocfg = obsConfigFromCli(cli);
    ObsSession obs(ocfg);
    if (ocfg.enabled()) {
        net.registerStats(obs.registry(),
                          ocfg.perVcStats
                              ? MmrRouter::StatsDetail::PerVc
                              : MmrRouter::StatsDetail::Aggregate);
        obs.attach(kernel);
    }

    std::vector<std::unique_ptr<NetworkInterface>> hosts;
    for (NodeId n = 0; n < topo.numNodes(); ++n) {
        hosts.push_back(
            std::make_unique<NetworkInterface>(net, n, seed + n));
        hosts.back()->setAutoReestablish(true);
    }

    // CBR load per host link plus light best-effort background.
    const double load = cli.real("load");
    const double link = ncfg.router.linkRateBps;
    for (NodeId n = 0; n < topo.numNodes(); ++n) {
        double local = 0.0;
        unsigned failures = 0;
        while (local < load * link && failures < 32) {
            NodeId dst;
            do {
                dst = static_cast<NodeId>(rng.below(topo.numNodes()));
            } while (dst == n);
            const double rate = rng.pick(paperRateLadder());
            if (local + rate > load * link * 1.05) {
                ++failures;
                continue;
            }
            if (hosts[n]->openCbrStream(dst, rate)) {
                local += rate;
                failures = 0;
            } else {
                ++failures;
            }
        }
        hosts[n]->addBestEffortFlow((n + 1) % topo.numNodes(),
                                    2 * kMbps);
    }

    const auto cycles = static_cast<Cycle>(cli.integer("cycles"));
    net.endToEnd().startMeasurement(cycles / 10);

    // Optional mid-run link failure.
    const auto fail = cli.list("fail-link");
    const Cycle fail_at = cycles / 2;
    bool failed = false;

    const auto wall_start = std::chrono::steady_clock::now();
    for (Cycle t = 0; t < cycles; ++t) {
        if (!failed && fail.size() == 2 && t == fail_at) {
            const NodeId a = static_cast<NodeId>(std::stoul(fail[0]));
            const NodeId b = static_cast<NodeId>(std::stoul(fail[1]));
            if (net.failLink(a, b))
                std::printf("cycle %llu: failed link %u-%u\n",
                            static_cast<unsigned long long>(t), a, b);
            failed = true;
        }
        for (auto &h : hosts)
            h->tick(kernel.now());
        kernel.step();
    }
    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    obs.finish(kernel.now());
    reportProfile(cli, collectProfile(kernel, wall_seconds,
                                      net.flitsDelivered() +
                                          net.datagramsSent()));

    unsigned streams = 0, lost = 0, reest = 0;
    for (auto &h : hosts) {
        streams += h->establishedStreams();
        lost += h->lostStreams();
        reest += h->reestablishedStreams();
    }
    Table t({"metric", "value"});
    t.addRow({"switches / links", std::to_string(topo.numNodes()) +
                                      " / " +
                                      std::to_string(topo.numLinks())});
    t.addRow({"streams (alive/lost/reestablished)",
              std::to_string(streams) + "/" + std::to_string(lost) +
                  "/" + std::to_string(reest)});
    t.addRow({"stream flits delivered",
              std::to_string(net.flitsDelivered() -
                             net.datagramsDelivered())});
    t.addRow({"datagrams delivered",
              std::to_string(net.datagramsDelivered()) + "/" +
                  std::to_string(net.datagramsSent())});
    t.addRow({"mean e2e delay (cycles)",
              Table::num(net.endToEnd().meanDelayCycles(), 2)});
    t.addRow({"mean e2e jitter (cycles)",
              Table::num(net.endToEnd().meanJitterCycles(), 3)});
    t.addRow({"flits lost to failures",
              std::to_string(net.flitsLostToFailures())});
    t.print(std::cout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        Cli cli;
        cli.flag("mode", "router", "router | network");
        // shared
        cli.flag("sched", "biased",
                 "biased|fixed|age|output-driven|autonet|islip|perfect");
        cli.flag("candidates", "8", "candidates per input port");
        cli.flag("vcs", "256", "virtual channels per port");
        cli.flag("load", "0.7",
                 "offered load fraction; a comma-separated list runs "
                 "a sweep (see --jobs)");
        cli.flag("jobs", "1",
                 "worker threads for a --load sweep "
                 "(0 = hardware concurrency)");
        cli.flag("cycles", "100000", "measured cycles");
        cli.flag("seed", "42", "random seed");
        // router mode
        cli.flag("ports", "8", "router degree");
        cli.flag("gbps", "1.24", "link rate (Gb/s)");
        cli.flag("flit", "128", "flit size (bits)");
        cli.flag("k", "2", "round factor K");
        cli.flag("warmup", "20000", "fixed warm-up cycles");
        cli.flag("auto-warmup", "false",
                 "size the warm-up by steady-state detection");
        cli.flag("vbr", "0", "VBR share of the load");
        cli.flag("be", "0", "best-effort share of the load");
        cli.flag("fps", "500", "VBR frame rate");
        cli.flag("peak", "3.0", "VBR peak/mean ratio");
        cli.flag("concurrency", "2.0", "VBR concurrency factor");
        cli.flag("be-reserve", "0", "round share reserved for BE");
        cli.flag("abort-late", "false", "abort late video frames");
        cli.flag("percentiles", "false",
                 "print per-stage / per-class latency percentile and "
                 "QoS deadline tables (router mode)");
        cli.flag("cbr-budget", "0",
                 "CBR delay budget in flit cycles (0 = off)");
        cli.flag("vbr-budget", "0",
                 "VBR delay budget in flit cycles (0 = off)");
        cli.flag("panic-at", "0",
                 "force an invariant violation at this cycle to "
                 "exercise the flight-recorder crash dump (0 = off)");
        // network mode
        cli.flag("topology", "mesh3x3",
                 "meshWxH | torusWxH | ringN | irregularN");
        cli.flag("fail-link", "", "a,b: fail this link mid-run");
        // observability
        addObsFlags(cli);
        cli.flag("profile-json", "",
                 "write the run's throughput profile as JSON");
        if (!cli.parse(argc, argv))
            return 0;

        const std::string mode = cli.str("mode");
        if (mode == "router")
            return runRouterMode(cli);
        if (mode == "network")
            return runNetworkMode(cli);
        mmr_fatal("unknown mode '", mode, "' (want router|network)");
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
