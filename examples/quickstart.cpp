/**
 * @file
 * Quickstart: build one MMR router, establish a handful of CBR
 * connections, push traffic through it, and print the paper's metrics
 * (delay, jitter, utilization).
 *
 * Run:  ./quickstart [--load=0.7] [--sched=biased] [--candidates=4]
 */

#include <cstdio>
#include <exception>
#include <iostream>

#include "base/cli.hh"
#include "base/table.hh"
#include "harness/single_router.hh"

int
main(int argc, char **argv)
{
    using namespace mmr;
    try {
        Cli cli;
        cli.flag("load", "0.7", "offered load as a fraction of 1.0");
        cli.flag("sched", "biased",
                 "scheduler: biased|fixed|autonet|islip|perfect");
        cli.flag("candidates", "4", "candidates per input port (1-8)");
        cli.flag("ports", "8", "router degree");
        cli.flag("vcs", "256", "virtual channels per input port");
        cli.flag("cycles", "100000", "measured flit cycles");
        cli.flag("seed", "42", "random seed");
        if (!cli.parse(argc, argv))
            return 0;

        ExperimentConfig cfg;
        cfg.offeredLoad = cli.real("load");
        cfg.router.scheduler = schedulerKindFromString(cli.str("sched"));
        cfg.router.candidates =
            static_cast<unsigned>(cli.integer("candidates"));
        cfg.router.numPorts = static_cast<unsigned>(cli.integer("ports"));
        cfg.router.vcsPerPort =
            static_cast<unsigned>(cli.integer("vcs"));
        cfg.measureCycles = static_cast<Cycle>(cli.integer("cycles"));
        cfg.seed = static_cast<std::uint64_t>(cli.integer("seed"));

        std::printf("MMR quickstart: %ux%u router, %u VCs/port, "
                    "%.2f Gb/s links, %u-bit flits (flit cycle %.1f ns)\n",
                    cfg.router.numPorts, cfg.router.numPorts,
                    cfg.router.vcsPerPort,
                    cfg.router.linkRateBps / kGbps, cfg.router.flitBits,
                    cfg.router.flitCycleNanos());
        std::printf("scheduler=%s candidates=%u offered load=%.0f%%\n\n",
                    to_string(cfg.router.scheduler).c_str(),
                    cfg.router.candidates, 100.0 * cfg.offeredLoad);

        const ExperimentResult r = runSingleRouter(cfg);

        Table t({"metric", "value"});
        t.addRow({"connections", std::to_string(r.connections)});
        t.addRow({"achieved load", Table::num(r.achievedLoad, 3)});
        t.addRow({"flits delivered", std::to_string(r.flitsDelivered)});
        t.addRow({"mean delay (cycles)", Table::num(r.meanDelayCycles)});
        t.addRow({"mean delay (us)", Table::num(r.meanDelayUs)});
        t.addRow({"mean jitter (cycles)",
                  Table::num(r.meanJitterCycles)});
        t.addRow({"p99 delay (cycles)", Table::num(r.p99DelayCycles)});
        t.addRow({"switch utilization", Table::num(r.utilization, 3)});
        t.print(std::cout);
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
